package mtree

import (
	"fmt"
	"math"
	"sort"

	"scmp/internal/topology"
)

// This file preserves the pre-incremental mtree engine — the map-backed
// tree and the scanning DCDM with a full O(m) bound rescan per leave —
// verbatim except for renames and one documented deviation (TreeRef.Delay
// below). It is the reference side of the differential gate in
// equiv_test.go and is not used by protocol code: the dense Tree and
// incremental DCDM in tree.go/dcdm.go are the production engine, and any
// behavioural divergence between the two is a bug in the fast path.

// TreeRef is the historical map-backed multicast tree: parent and
// children maps, a member set, and no cached state — every Delay call
// walks the parent chain and every accessor sorts a fresh slice.
type TreeRef struct {
	g        *topology.Graph
	root     topology.NodeID
	parent   map[topology.NodeID]topology.NodeID
	children map[topology.NodeID]map[topology.NodeID]bool
	members  map[topology.NodeID]bool
}

// NewTreeRef returns a reference tree containing only the root.
func NewTreeRef(g *topology.Graph, root topology.NodeID) *TreeRef {
	if root < 0 || int(root) >= g.N() {
		panic(fmt.Sprintf("mtree: root %d out of range", root))
	}
	return &TreeRef{
		g:        g,
		root:     root,
		parent:   make(map[topology.NodeID]topology.NodeID),
		children: make(map[topology.NodeID]map[topology.NodeID]bool),
		members:  make(map[topology.NodeID]bool),
	}
}

// Root returns the tree root (the m-router).
func (t *TreeRef) Root() topology.NodeID { return t.root }

// OnTree reports whether v is currently on the tree.
func (t *TreeRef) OnTree(v topology.NodeID) bool {
	if v == t.root {
		return true
	}
	_, ok := t.parent[v]
	return ok
}

// Parent returns v's upstream router; ok is false for the root and for
// off-tree nodes.
func (t *TreeRef) Parent(v topology.NodeID) (topology.NodeID, bool) {
	p, ok := t.parent[v]
	return p, ok
}

// Children returns v's downstream routers, sorted for determinism.
func (t *TreeRef) Children(v topology.NodeID) []topology.NodeID {
	set := t.children[v]
	out := make([]topology.NodeID, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IsMember reports whether v is marked as a member router.
func (t *TreeRef) IsMember(v topology.NodeID) bool { return t.members[v] }

// SetMember marks or unmarks v as a member router. v must be on the tree
// to be marked.
func (t *TreeRef) SetMember(v topology.NodeID, member bool) {
	if member {
		if !t.OnTree(v) {
			panic(fmt.Sprintf("mtree: SetMember(%d) off tree", v))
		}
		t.members[v] = true
	} else {
		delete(t.members, v)
	}
}

// Members returns the member routers, sorted.
func (t *TreeRef) Members() []topology.NodeID {
	out := make([]topology.NodeID, 0, len(t.members))
	for v := range t.members {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Nodes returns every on-tree node, sorted, root included.
func (t *TreeRef) Nodes() []topology.NodeID {
	out := []topology.NodeID{t.root}
	for v := range t.parent {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Size returns the number of on-tree nodes.
func (t *TreeRef) Size() int { return len(t.parent) + 1 }

// attach links child under parent; both must be adjacent in the graph
// and child must not already be on the tree.
func (t *TreeRef) attach(child, parent topology.NodeID) {
	if t.OnTree(child) {
		panic(fmt.Sprintf("mtree: attach(%d) already on tree", child))
	}
	if !t.OnTree(parent) {
		panic(fmt.Sprintf("mtree: attach under off-tree parent %d", parent))
	}
	if _, ok := t.g.Edge(child, parent); !ok {
		panic(fmt.Sprintf("mtree: attach %d under non-adjacent %d", child, parent))
	}
	t.parent[child] = parent
	if t.children[parent] == nil {
		t.children[parent] = make(map[topology.NodeID]bool)
	}
	t.children[parent][child] = true
}

// detach unlinks v from its parent, leaving v's subtree hanging off v.
func (t *TreeRef) detach(v topology.NodeID) {
	p, ok := t.parent[v]
	if !ok {
		return
	}
	delete(t.parent, v)
	delete(t.children[p], v)
	if len(t.children[p]) == 0 {
		delete(t.children, p)
	}
}

// reparent moves on-tree node v (and its whole subtree) under newParent.
func (t *TreeRef) reparent(v, newParent topology.NodeID) {
	if !t.OnTree(v) || v == t.root {
		panic(fmt.Sprintf("mtree: reparent(%d) invalid", v))
	}
	if _, ok := t.g.Edge(v, newParent); !ok {
		panic(fmt.Sprintf("mtree: reparent %d under non-adjacent %d", v, newParent))
	}
	t.detach(v)
	t.parent[v] = newParent
	if t.children[newParent] == nil {
		t.children[newParent] = make(map[topology.NodeID]bool)
	}
	t.children[newParent][v] = true
}

// PruneFrom removes v if it is a removable leaf (non-member, childless,
// not root), then walks upstream removing newly exposed removable leaves.
// It returns the nodes removed, bottom-up.
func (t *TreeRef) PruneFrom(v topology.NodeID) []topology.NodeID {
	var removed []topology.NodeID
	for v != t.root && t.OnTree(v) && !t.members[v] && len(t.children[v]) == 0 {
		p := t.parent[v]
		t.detach(v)
		removed = append(removed, v)
		v = p
	}
	return removed
}

// Leave unmarks v as a member and prunes any branch it no longer
// justifies. It returns the routers removed from the tree.
func (t *TreeRef) Leave(v topology.NodeID) []topology.NodeID {
	delete(t.members, v)
	return t.PruneFrom(v)
}

// DetachSubtree removes v and its entire subtree from the tree,
// returning the stranded member routers in ascending order. Detaching an
// off-tree node is a no-op; detaching the root panics.
func (t *TreeRef) DetachSubtree(v topology.NodeID) []topology.NodeID {
	if v == t.root {
		panic("mtree: DetachSubtree of the root")
	}
	if !t.OnTree(v) {
		return nil
	}
	p := t.parent[v]
	t.detach(v)
	var orphans []topology.NodeID
	stack := []topology.NodeID{v}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if t.members[x] {
			orphans = append(orphans, x)
			delete(t.members, x)
		}
		stack = append(stack, topology.SortedNodes(t.children[x])...)
		delete(t.children, x)
		delete(t.parent, x)
	}
	t.PruneFrom(p)
	sort.Slice(orphans, func(i, j int) bool { return orphans[i] < orphans[j] })
	return orphans
}

// Cost returns the tree cost: the sum of link costs over tree edges,
// accumulated in ascending child order to match Tree.Cost exactly.
func (t *TreeRef) Cost() float64 {
	sum := 0.0
	for _, v := range t.Nodes() {
		p, ok := t.parent[v]
		if !ok {
			continue
		}
		l, ok := t.g.Edge(v, p)
		if !ok {
			panic("mtree: tree edge not in graph")
		}
		sum += l.Cost
	}
	return sum
}

// Delay returns the multicast delay ml(v), +Inf for off-tree nodes.
//
// Deviation from the historical code: the chain is summed top-down
// (root toward v) instead of bottom-up. Float addition is not
// associative, so the two orders can differ in the last bit; the
// incremental cache extends parent sums downward, making top-down the
// canonical order (DESIGN.md §14). Summing the same edges in the same
// order is what lets the differential gate demand exact equality.
func (t *TreeRef) Delay(v topology.NodeID) float64 {
	if !t.OnTree(v) {
		return math.Inf(1)
	}
	var chain []topology.NodeID
	for v != t.root {
		chain = append(chain, v)
		v = t.parent[v]
	}
	sum := 0.0
	for i := len(chain) - 1; i >= 0; i-- {
		p := t.root
		if i+1 < len(chain) {
			p = chain[i+1]
		}
		l, _ := t.g.Edge(chain[i], p)
		sum += l.Delay
	}
	return sum
}

// TreeDelay returns the longest multicast delay over all members.
func (t *TreeRef) TreeDelay() float64 {
	max := 0.0
	for v := range t.members {
		if d := t.Delay(v); d > max {
			max = d
		}
	}
	return max
}

// PathToRoot returns the tree path v -> root inclusive, or nil when v is
// off tree.
func (t *TreeRef) PathToRoot(v topology.NodeID) []topology.NodeID {
	if !t.OnTree(v) {
		return nil
	}
	path := []topology.NodeID{v}
	for v != t.root {
		v = t.parent[v]
		path = append(path, v)
	}
	return path
}

// Edges returns the set of (child, parent) tree edges.
func (t *TreeRef) Edges() map[[2]topology.NodeID]bool {
	out := make(map[[2]topology.NodeID]bool, len(t.parent))
	for v, p := range t.parent {
		out[[2]topology.NodeID{v, p}] = true
	}
	return out
}

// Validate checks the structural invariants (see Tree.Validate).
func (t *TreeRef) Validate() error {
	for v, p := range t.parent {
		if _, ok := t.g.Edge(v, p); !ok {
			return fmt.Errorf("mtree: edge %d->%d not in graph", v, p)
		}
		if t.children[p] == nil || !t.children[p][v] {
			return fmt.Errorf("mtree: child map missing %d under %d", v, p)
		}
		seen := map[topology.NodeID]bool{v: true}
		cur := v
		for cur != t.root {
			next, ok := t.parent[cur]
			if !ok {
				return fmt.Errorf("mtree: %d's chain dead-ends at %d", v, cur)
			}
			if seen[next] {
				return fmt.Errorf("mtree: cycle through %d", next)
			}
			seen[next] = true
			cur = next
		}
	}
	for p, kids := range t.children {
		for c := range kids {
			if t.parent[c] != p {
				return fmt.Errorf("mtree: children map claims %d under %d", c, p)
			}
		}
	}
	for m := range t.members {
		if !t.OnTree(m) {
			return fmt.Errorf("mtree: member %d off tree", m)
		}
	}
	for v := range t.parent {
		if len(t.children[v]) == 0 && !t.members[v] {
			return fmt.Errorf("mtree: non-member leaf %d", v)
		}
	}
	return nil
}

// Graft splices path into the reference tree; see Tree.Graft.
func (t *TreeRef) Graft(path []topology.NodeID) (pruned []topology.NodeID, restructured bool) {
	if len(path) == 0 || !t.OnTree(path[0]) {
		panic("mtree: Graft path must start on the tree")
	}
	var orphans []topology.NodeID
	prev := path[0]
	for _, x := range path[1:] {
		switch {
		case !t.OnTree(x):
			t.attach(x, prev)
		case x == t.root, t.isAncestor(x, prev):
			if p, ok := t.Parent(x); !ok || p != prev {
				orphans = append(orphans, prev)
				restructured = true
			}
		case func() bool { p, ok := t.Parent(x); return ok && p == prev }():
			// The path follows an existing tree edge; nothing to do.
		default:
			oldParent := t.parent[x]
			t.reparent(x, prev)
			pruned = append(pruned, t.PruneFrom(oldParent)...)
			restructured = true
		}
		prev = x
	}
	for _, o := range orphans {
		pruned = append(pruned, t.PruneFrom(o)...)
	}
	return pruned, restructured
}

// isAncestor reports whether a lies on v's path to the root.
func (t *TreeRef) isAncestor(a, v topology.NodeID) bool {
	for {
		if v == a {
			return true
		}
		p, ok := t.parent[v]
		if !ok {
			return false
		}
		v = p
	}
}

// dcdmRef is the historical scanning DCDM: a scalar maxUL rebuilt by a
// full member rescan on every leave, and a graft scan that recomputes
// each candidate's tree delay by walking the parent chain.
type dcdmRef struct {
	g       *topology.Graph
	root    topology.NodeID
	kappa   float64
	absMax  float64
	tree    *TreeRef
	spDelay *topology.AllPairs
	spCost  *topology.AllPairs
	maxUL   float64
}

// newDCDMRef mirrors NewDCDM over the reference tree.
func newDCDMRef(g *topology.Graph, root topology.NodeID, kappa float64, spDelay, spCost *topology.AllPairs) *dcdmRef {
	if kappa < 1 {
		panic(fmt.Sprintf("mtree: DCDM kappa %g < 1 would reject every tree", kappa))
	}
	if spDelay == nil {
		spDelay = topology.NewAllPairs(g, topology.ByDelay)
	}
	if spCost == nil {
		spCost = topology.NewAllPairs(g, topology.ByCost)
	}
	return &dcdmRef{
		g:       g,
		root:    root,
		kappa:   kappa,
		tree:    NewTreeRef(g, root),
		spDelay: spDelay,
		spCost:  spCost,
	}
}

// SetQoSBudget mirrors DCDM.SetQoSBudget.
func (d *dcdmRef) SetQoSBudget(budget float64) {
	if budget <= 0 {
		d.absMax = 0
		return
	}
	d.absMax = budget
}

// Tree returns the live reference tree.
func (d *dcdmRef) Tree() *TreeRef { return d.tree }

// Bound mirrors DCDM.Bound against the scalar maxUL.
func (d *dcdmRef) Bound() float64 {
	if d.absMax > 0 {
		return d.absMax
	}
	if math.IsInf(d.kappa, 1) {
		return math.Inf(1)
	}
	return d.kappa * d.maxUL
}

// UnicastDelay mirrors DCDM.UnicastDelay.
func (d *dcdmRef) UnicastDelay(v topology.NodeID) float64 {
	return d.spDelay.Row(d.root).Delay[v]
}

// Join is the historical join: identical decisions, no caches.
func (d *dcdmRef) Join(s topology.NodeID) JoinResult {
	res := JoinResult{Member: s}
	ul := d.UnicastDelay(s)
	if d.tree.OnTree(s) {
		res.AlreadyOn = true
		d.tree.SetMember(s, true)
		if ul > d.maxUL {
			d.maxUL = ul
		}
		return res
	}
	bound := d.Bound()
	var path []topology.NodeID
	if ul > bound {
		path = d.spDelay.Row(d.root).To(s)
		res.BestEffort = d.absMax > 0
	} else {
		path = d.bestGraftPath(s, bound)
	}
	if path == nil {
		panic(fmt.Sprintf("mtree: no graft path for %d (disconnected graph?)", s))
	}
	res.Path = path
	res.Pruned, res.Restructured = d.tree.Graft(path)
	d.tree.SetMember(s, true)
	if ul > d.maxUL {
		d.maxUL = ul
	}
	return res
}

// bestGraftPath is the historical scan: every candidate's tree delay is
// recomputed by a parent-chain walk, both rows are considered for each
// node in turn (cost row first), and no candidate is ever skipped.
func (d *dcdmRef) bestGraftPath(s topology.NodeID, bound float64) []topology.NodeID {
	type cand struct {
		cost, ml float64
		node     topology.NodeID
		sp       *topology.Paths
	}
	var best *cand
	consider := func(v topology.NodeID, sp *topology.Paths) {
		if !sp.Reachable(v) {
			return
		}
		ml := d.tree.Delay(v) + sp.Delay[v]
		if ml > bound {
			return
		}
		c := cand{cost: sp.Cost[v], ml: ml, node: v, sp: sp}
		better := best == nil
		if !better {
			switch {
			case c.cost < best.cost:
				better = true
			case best.cost < c.cost:
			case c.ml < best.ml:
				better = true
			case best.ml < c.ml:
			default:
				better = c.node < best.node
			}
		}
		if better {
			best = &c
		}
	}
	for _, v := range d.tree.Nodes() {
		consider(v, d.spCost.Row(s))  // P_lc(s, v)
		consider(v, d.spDelay.Row(s)) // P_sl(s, v)
	}
	if best == nil {
		sp := d.spDelay.Row(d.root)
		return sp.To(s)
	}
	path := best.sp.To(best.node)
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// Leave is the historical leave: prune, then rebuild the bound with a
// full member rescan.
func (d *dcdmRef) Leave(s topology.NodeID) LeaveResult {
	res := LeaveResult{Member: s, Pruned: d.tree.Leave(s)}
	d.recomputeMaxUL()
	return res
}

// DetachSubtree mirrors DCDM.DetachSubtree with the full rescan.
func (d *dcdmRef) DetachSubtree(v topology.NodeID) []topology.NodeID {
	orphans := d.tree.DetachSubtree(v)
	d.recomputeMaxUL()
	return orphans
}

// SetAllPairs mirrors DCDM.SetAllPairs with the full rescan.
func (d *dcdmRef) SetAllPairs(spDelay, spCost *topology.AllPairs) {
	d.spDelay = spDelay
	d.spCost = spCost
	d.recomputeMaxUL()
}

// recomputeMaxUL rebuilds the scalar bound input from the member set.
func (d *dcdmRef) recomputeMaxUL() {
	d.maxUL = 0
	for _, m := range d.tree.Members() {
		if ul := d.UnicastDelay(m); ul > d.maxUL {
			d.maxUL = ul
		}
	}
}
