package mtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"scmp/internal/topology"
)

func TestQoSBudgetBoundsGrafts(t *testing.T) {
	// Two-rail graph: fast rail delay 2 (cost 20), cheap rail delay 12
	// (cost 2). A budget of 5 forbids the cheap rail even though the
	// unconstrained (kappa=inf) algorithm would take it.
	d := NewDCDM(fig5Graph(), 0, 1, nil, nil)
	d.SetQoSBudget(5)
	if d.Bound() != 5 {
		t.Fatalf("bound = %g, want 5", d.Bound())
	}
	res := d.Join(2)
	if res.BestEffort {
		t.Fatal("member within budget flagged best-effort")
	}
	if got := d.Tree().Delay(2); got > 5 {
		t.Fatalf("ml(2) = %g exceeds budget", got)
	}
	if d.Tree().Cost() != 20 {
		t.Fatalf("cost = %g, want fast rail 20", d.Tree().Cost())
	}
}

func TestQoSBudgetBestEffort(t *testing.T) {
	// Budget 1 is unmeetable for member 2 (unicast delay 2): it joins
	// best-effort over P_sl.
	d := NewDCDM(fig5Graph(), 0, 1, nil, nil)
	d.SetQoSBudget(1)
	res := d.Join(2)
	if !res.BestEffort {
		t.Fatal("unmeetable budget not flagged best-effort")
	}
	if got := d.Tree().Delay(2); got != 2 {
		t.Fatalf("best-effort ml(2) = %g, want unicast delay 2", got)
	}
}

func TestQoSBudgetClearRestoresKappa(t *testing.T) {
	d := NewDCDM(fig5Graph(), 0, 1.5, nil, nil)
	d.SetQoSBudget(7)
	if d.QoSBudget() != 7 || d.Bound() != 7 {
		t.Fatal("budget not applied")
	}
	d.SetQoSBudget(0)
	if d.QoSBudget() != 0 {
		t.Fatal("budget not cleared")
	}
	d.Join(2)
	if d.Bound() != 1.5*2 {
		t.Fatalf("bound = %g, want kappa*maxUL = 3", d.Bound())
	}
}

// Property: with an absolute budget, every member that was NOT admitted
// best-effort sits within the budget at join time, and best-effort
// members sit at exactly their unicast delay.
func TestPropertyQoSBudgetRespected(t *testing.T) {
	f := func(seed int64, rawBudget uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := topology.Random(topology.DefaultRandom(20, 4), rng)
		if err != nil {
			return false
		}
		d := NewDCDM(g, 0, 1, nil, nil)
		budget := 10 + float64(rawBudget)
		d.SetQoSBudget(budget)
		for _, v := range rng.Perm(g.N())[:8] {
			if v == 0 {
				continue
			}
			s := topology.NodeID(v)
			res := d.Join(s)
			ml := d.Tree().Delay(s)
			switch {
			case res.BestEffort:
				if ml > d.UnicastDelay(s)+1e-9 {
					return false
				}
			case res.AlreadyOn || res.Restructured:
				// An existing relay's delay was never constrained, and
				// restructuring may shift delays — the budget applies
				// to the graft decision, not retroactively.
			case ml > budget+1e-9:
				return false
			}
			if err := d.Tree().Validate(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
