package mtree

import (
	"reflect"
	"testing"

	"scmp/internal/topology"
)

// detachGraph: a tree-shaped topology plus a bypass edge for re-grafts.
//
//	0 - 1 - 2 - 3
//	    |       |
//	    4       (3 also reaches 5 via 0-5 bypass)
//	0 - 5
func detachGraph() *topology.Graph {
	g := topology.New(6)
	g.MustAddEdge(0, 1, 1, 2)
	g.MustAddEdge(1, 2, 1, 2)
	g.MustAddEdge(2, 3, 1, 2)
	g.MustAddEdge(1, 4, 1, 2)
	g.MustAddEdge(0, 5, 1, 2)
	g.MustAddEdge(5, 3, 1, 2)
	return g
}

func TestDetachSubtreeStrandsMembersAndPrunesRelays(t *testing.T) {
	g := detachGraph()
	tr := NewTree(g, 0)
	tr.attach(1, 0)
	tr.attach(2, 1)
	tr.attach(3, 2)
	tr.attach(4, 1)
	tr.SetMember(3, true)
	tr.SetMember(4, true)

	// Cutting at 2 strands member 3; relay 2 leaves with the subtree,
	// and nothing above needs pruning (1 still serves member 4).
	orphans := tr.DetachSubtree(2)
	if !reflect.DeepEqual(orphans, []topology.NodeID{3}) {
		t.Fatalf("orphans = %v, want [3]", orphans)
	}
	if tr.OnTree(2) || tr.OnTree(3) || tr.IsMember(3) {
		t.Fatal("detached subtree still on tree")
	}
	if !tr.OnTree(1) || !tr.IsMember(4) {
		t.Fatal("survivors damaged")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDetachSubtreePrunesRelayChainAbove(t *testing.T) {
	g := chainGraph(5)
	tr := chainTree(t, g, 4)
	tr.SetMember(4, true)
	// Only member is 4; detaching at 3 must also prune relays 2 and 1.
	orphans := tr.DetachSubtree(3)
	if !reflect.DeepEqual(orphans, []topology.NodeID{4}) {
		t.Fatalf("orphans = %v, want [4]", orphans)
	}
	if tr.Size() != 1 {
		t.Fatalf("tree size = %d, want just the root", tr.Size())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDetachSubtreeEdgeCases(t *testing.T) {
	g := chainGraph(3)
	tr := chainTree(t, g, 1)
	if got := tr.DetachSubtree(2); got != nil {
		t.Fatalf("off-tree detach = %v, want nil", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic detaching the root")
		}
	}()
	tr.DetachSubtree(0)
}

func TestDCDMDetachAndRegraft(t *testing.T) {
	g := detachGraph()
	d := NewDCDM(g, 0, 2, nil, nil)
	d.Join(3)
	d.Join(4)

	// Member 3 joined over the shortest-delay bypass 0-5-3; member 4
	// over 0-1-4. Crashing router 5 strands exactly member 3.
	orphans := d.DetachSubtree(5)
	if !reflect.DeepEqual(orphans, []topology.NodeID{3}) {
		t.Fatalf("orphans = %v, want [3]", orphans)
	}
	if d.Tree().IsMember(3) || !d.Tree().IsMember(4) {
		t.Fatal("wrong members after detach")
	}
	// Re-grafting through tables that avoid the crashed router must
	// route member 3 the long way, 0-1-2-3.
	avoid := func(u, v topology.NodeID) bool { return u == 5 || v == 5 }
	d.SetAllPairs(
		topology.NewAllPairsAvoid(g, topology.ByDelay, avoid),
		topology.NewAllPairsAvoid(g, topology.ByCost, avoid),
	)
	d.Join(3)
	if !d.Tree().OnTree(2) || !d.Tree().IsMember(3) {
		t.Fatalf("re-graft did not avoid crashed router: nodes=%v", d.Tree().Nodes())
	}
	if err := d.Tree().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSetAllPairsRecomputesBound(t *testing.T) {
	g := chainGraph(3)
	d := NewDCDM(g, 0, 1, nil, nil)
	d.Join(2)
	before := d.Bound()
	// Doubling every delay through fresh tables must double the bound.
	g2 := topology.New(3)
	g2.MustAddEdge(0, 1, 2, 2)
	g2.MustAddEdge(1, 2, 2, 2)
	d.SetAllPairs(topology.NewAllPairs(g2, topology.ByDelay), topology.NewAllPairs(g2, topology.ByCost))
	if d.Bound() != 2*before {
		t.Fatalf("bound = %g, want %g", d.Bound(), 2*before)
	}
}
