package mtree

import (
	"math"
	"math/rand"
	"slices"
	"testing"

	"scmp/internal/topology"
)

// The leave fast path (satellite of the incremental engine): a leave
// whose member sits strictly below the current max unicast delay must
// not change the bound, and a leave of the max member itself must
// tighten it — the lazy-deletion multiset's pop path, the only leave
// that pays O(log m).
func TestDCDMLeaveFastPathBoundTightens(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	wg, err := topology.Waxman(topology.DefaultWaxman(60), rng)
	if err != nil {
		t.Fatal(err)
	}
	g := wg.Graph
	d := NewDCDM(g, 0, 1.5, nil, nil)
	members := pickMembers(rng, g.N(), 12, 0)
	for _, m := range members {
		d.Join(m)
	}
	// Identify the unique farthest member and some member strictly
	// below it.
	var farthest, below topology.NodeID = -1, -1
	maxUL := 0.0
	for _, m := range members {
		if ul := d.UnicastDelay(m); ul > maxUL {
			maxUL = ul
			farthest = m
		}
	}
	for _, m := range members {
		if m != farthest && d.UnicastDelay(m) < maxUL {
			below = m
			break
		}
	}
	if farthest < 0 || below < 0 {
		t.Fatal("degenerate fixture: need distinct unicast delays")
	}

	boundBefore := d.Bound()
	d.Leave(below) // fast path: lazy note, bound untouched
	if got := d.Bound(); got != boundBefore {
		t.Fatalf("leave below the max moved the bound: %g -> %g", boundBefore, got)
	}
	d.Leave(farthest) // pop path: the bound must tighten
	if got := d.Bound(); !(got < boundBefore) {
		t.Fatalf("leave of the max member did not tighten the bound: %g -> %g", boundBefore, got)
	}
	// And the tightened bound must equal a from-scratch rescan.
	if got, want := d.Bound(), 1.5*d.recomputeMaxUL(); got != want {
		t.Fatalf("tightened bound %g, member rescan says %g", got, want)
	}
}

// LeaveBatch must land on exactly the tree that the same leaves applied
// sequentially produce, with the same total pruned set.
func TestDCDMLeaveBatchMatchesSequential(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		wg, err := topology.Waxman(topology.DefaultWaxman(80), rng)
		if err != nil {
			t.Fatal(err)
		}
		g := wg.Graph
		spDelay := topology.NewAllPairs(g, topology.ByDelay)
		spCost := topology.NewAllPairs(g, topology.ByCost)
		batched := NewDCDM(g, 0, 1.5, spDelay, spCost)
		serial := NewDCDM(g, 0, 1.5, spDelay, spCost)
		members := pickMembers(rng, g.N(), 20, 0)
		for _, m := range members {
			batched.Join(m)
			serial.Join(m)
		}
		leaving := members[:7]
		bp := slices.Clone(batched.LeaveBatch(leaving))
		var sp []topology.NodeID
		for _, m := range leaving {
			sp = append(sp, serial.Leave(m).Pruned...)
		}
		slices.Sort(bp)
		slices.Sort(sp)
		if !slices.Equal(bp, sp) {
			t.Fatalf("seed %d: pruned sets diverged: batch %v serial %v", seed, bp, sp)
		}
		be, se := batched.Tree().Edges(), serial.Tree().Edges()
		if len(be) != len(se) {
			t.Fatalf("seed %d: edge counts diverged: batch %d serial %d", seed, len(be), len(se))
		}
		for e := range be {
			if !se[e] {
				t.Fatalf("seed %d: batch tree has edge %v, serial does not", seed, e)
			}
		}
		if got, want := batched.Bound(), serial.Bound(); got != want {
			t.Fatalf("seed %d: bounds diverged: batch %v serial %v", seed, got, want)
		}
		if err := batched.Tree().Validate(); err != nil {
			t.Fatalf("seed %d: batch tree invalid: %v", seed, err)
		}
	}
}

// maxMultiset unit coverage: max tracking under interleaved adds and
// removes, lazy deletion of duplicates, compaction, reset.
func TestMaxMultiset(t *testing.T) {
	var s maxMultiset
	if s.Max() != 0 || s.Len() != 0 {
		t.Fatal("empty multiset should report 0 max, 0 len")
	}
	s.Add(3)
	s.Add(7)
	s.Add(5)
	s.Add(7) // duplicate max
	if s.Max() != 7 || s.Len() != 4 {
		t.Fatalf("got max %g len %d, want 7 and 4", s.Max(), s.Len())
	}
	s.Remove(5) // lazy: below the max
	if s.Max() != 7 || s.Len() != 3 {
		t.Fatalf("after lazy remove: max %g len %d, want 7 and 3", s.Max(), s.Len())
	}
	s.Remove(7) // one duplicate of the max pops; the other remains
	if s.Max() != 7 || s.Len() != 2 {
		t.Fatalf("after removing one max duplicate: max %g len %d, want 7 and 2", s.Max(), s.Len())
	}
	s.Remove(7)
	if s.Max() != 3 || s.Len() != 1 {
		t.Fatalf("after removing the max: max %g len %d, want 3 and 1", s.Max(), s.Len())
	}
	s.Add(5) // re-adding the lazily deleted value must cancel the pending note
	if s.Max() != 5 || s.Len() != 2 {
		t.Fatalf("after re-add: max %g len %d, want 5 and 2", s.Max(), s.Len())
	}
	s.Reset()
	if s.Max() != 0 || s.Len() != 0 {
		t.Fatal("reset multiset should be empty")
	}

	// Randomised cross-check against a naive slice, including +Inf
	// values (unreachable members) and heavy duplication to force
	// compaction.
	rng := rand.New(rand.NewSource(3))
	var naive []float64
	vals := []float64{1, 2, 2.5, 4, 8, math.Inf(1)}
	for i := 0; i < 5000; i++ {
		if len(naive) == 0 || rng.Intn(3) > 0 {
			x := vals[rng.Intn(len(vals))]
			s.Add(x)
			naive = append(naive, x)
		} else {
			k := rng.Intn(len(naive))
			s.Remove(naive[k])
			naive[k] = naive[len(naive)-1]
			naive = naive[:len(naive)-1]
		}
		want := 0.0
		for _, x := range naive {
			if x > want {
				want = x
			}
		}
		if got := s.Max(); got != want || s.Len() != len(naive) {
			t.Fatalf("step %d: max %g len %d, naive says %g and %d", i, got, s.Len(), want, len(naive))
		}
	}
}

// Shared-view contract: Members/Nodes slices are rebuilt in place and
// stay sorted across mutations.
func TestTreeSharedViewsStaySorted(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	wg, err := topology.Waxman(topology.DefaultWaxman(50), rng)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDCDM(wg.Graph, 0, math.Inf(1), nil, nil)
	on := map[topology.NodeID]bool{}
	for i := 0; i < 200; i++ {
		v := topology.NodeID(rng.Intn(wg.Graph.N()))
		if on[v] {
			d.Leave(v)
			delete(on, v)
		} else {
			d.Join(v)
			on[v] = true
		}
		if !slices.IsSorted(d.Tree().Members()) {
			t.Fatalf("step %d: Members view unsorted: %v", i, d.Tree().Members())
		}
		if !slices.IsSorted(d.Tree().Nodes()) {
			t.Fatalf("step %d: Nodes view unsorted: %v", i, d.Tree().Nodes())
		}
		if got, want := len(d.Tree().Members()), d.Tree().MemberCount(); got != want {
			t.Fatalf("step %d: Members view has %d entries, MemberCount says %d", i, got, want)
		}
	}
}
