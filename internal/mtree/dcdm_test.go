package mtree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"scmp/internal/topology"
)

// fig5Graph is a small topology in the spirit of the paper's Fig. 5:
// node 0 is the m-router; the shortest-delay and least-cost routes to
// the members differ, and one join forces a loop-break.
//
//	0 --(1,10)-- 1 --(1,10)-- 2       fast, expensive upper rail
//	0 --(6,1)--- 3 --(6,1)--- 2       slow, cheap lower rail
//	2 --(1,1)--- 4                    stub member
func fig5Graph() *topology.Graph {
	g := topology.New(5)
	g.MustAddEdge(0, 1, 1, 10)
	g.MustAddEdge(1, 2, 1, 10)
	g.MustAddEdge(0, 3, 6, 1)
	g.MustAddEdge(3, 2, 6, 1)
	g.MustAddEdge(2, 4, 1, 1)
	return g
}

func TestDCDMFirstJoinUsesShortestDelayPath(t *testing.T) {
	d := NewDCDM(fig5Graph(), 0, 1, nil, nil)
	res := d.Join(2)
	// Empty tree: bound 0 < ul(2)=2, so P_sl(0->2) = 0-1-2 is installed.
	want := []topology.NodeID{0, 1, 2}
	if len(res.Path) != 3 || res.Path[0] != 0 || res.Path[1] != 1 || res.Path[2] != 2 {
		t.Fatalf("path = %v, want %v", res.Path, want)
	}
	if res.Restructured {
		t.Fatal("first join cannot restructure")
	}
	tr := d.Tree()
	if tr.TreeDelay() != 2 || tr.Cost() != 20 {
		t.Fatalf("delay=%g cost=%g, want 2, 20", tr.TreeDelay(), tr.Cost())
	}
	if d.Bound() != 2 {
		t.Fatalf("bound = %g, want 2", d.Bound())
	}
}

func TestDCDMTightGraftRespectsBound(t *testing.T) {
	d := NewDCDM(fig5Graph(), 0, 1, nil, nil)
	d.Join(2)
	// Member 4: ul = 3 > bound 2? No: ul(4) = 2+1 = 3 > 2, so P_sl again,
	// and the bound grows to 3.
	res := d.Join(4)
	if d.Bound() != 3 {
		t.Fatalf("bound = %g, want 3", d.Bound())
	}
	if res.Restructured {
		t.Fatal("graft along the existing branch must not restructure")
	}
	tr := d.Tree()
	if tr.Delay(4) != 3 {
		t.Fatalf("ml(4) = %g, want 3", tr.Delay(4))
	}
	// Cost must still be the upper rail plus the stub: 10+10+1.
	if tr.Cost() != 21 {
		t.Fatalf("cost = %g, want 21", tr.Cost())
	}
}

func TestDCDMLooseConstraintPrefersCheapPath(t *testing.T) {
	// With no delay constraint, member 2 should come in over the cheap
	// lower rail (cost 2) instead of the fast upper rail (cost 20).
	d := NewDCDM(fig5Graph(), 0, math.Inf(1), nil, nil)
	d.Join(2)
	tr := d.Tree()
	if tr.Cost() != 2 {
		t.Fatalf("cost = %g, want 2 (lower rail)", tr.Cost())
	}
	if tr.Delay(2) != 12 {
		t.Fatalf("ml(2) = %g, want 12", tr.Delay(2))
	}
	if !tr.OnTree(3) || tr.OnTree(1) {
		t.Fatal("tree should use relay 3, not relay 1")
	}
}

func TestDCDMLoopBreak(t *testing.T) {
	// Force the Fig. 5(c,d) situation: member 2 is on the tree via the
	// upper rail; member 3 then joins. ul(3)=6 > bound 2, so P_sl(0->3)
	// is the direct edge 0-3 — no loop yet. Now make 3 leave and rejoin
	// members so that a *graft path* crosses the tree: instead, drive
	// Graft directly.
	g := fig5Graph()
	tr := NewTree(g, 0)
	tr.attach(1, 0)
	tr.attach(2, 1)
	tr.SetMember(2, true)
	// Graft path 0 -> 3 -> 2 re-enters the tree at 2: node 2 must adopt
	// 3 as its new upstream and the old branch through 1 must be pruned.
	pruned, restructured := tr.Graft([]topology.NodeID{0, 3, 2})
	if !restructured {
		t.Fatal("loop-break not reported")
	}
	if len(pruned) != 1 || pruned[0] != 1 {
		t.Fatalf("pruned = %v, want [1]", pruned)
	}
	if p, _ := tr.Parent(2); p != 3 {
		t.Fatalf("parent(2) = %d, want 3", p)
	}
	if tr.OnTree(1) {
		t.Fatal("node 1 should be pruned")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGraftAlongExistingEdgeIsNoop(t *testing.T) {
	g := fig5Graph()
	tr := NewTree(g, 0)
	tr.attach(1, 0)
	tr.attach(2, 1)
	tr.SetMember(2, true)
	pruned, restructured := tr.Graft([]topology.NodeID{0, 1, 2})
	if restructured || len(pruned) != 0 {
		t.Fatalf("graft along tree edges: pruned=%v restructured=%v", pruned, restructured)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGraftUphillTowardAncestorKeepsTreeValid(t *testing.T) {
	// Path 2 -> 1 walks from a node to its own ancestor; re-parenting 1
	// under 2 would create a cycle, so Graft must leave the tree intact.
	g := fig5Graph()
	tr := NewTree(g, 0)
	tr.attach(1, 0)
	tr.attach(2, 1)
	tr.SetMember(2, true)
	_, _ = tr.Graft([]topology.NodeID{2, 1})
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if p, _ := tr.Parent(2); p != 1 {
		t.Fatalf("parent(2) = %d, want 1", p)
	}
	if p, _ := tr.Parent(1); p != 0 {
		t.Fatalf("parent(1) = %d, want 0", p)
	}
}

func TestGraftThroughRootKeepsTreeValid(t *testing.T) {
	// A path that passes through the root mid-way must not try to
	// re-parent the root.
	g := topology.New(4)
	g.MustAddEdge(1, 0, 1, 1)
	g.MustAddEdge(0, 2, 1, 1)
	g.MustAddEdge(2, 3, 1, 1)
	tr := NewTree(g, 0)
	tr.attach(1, 0)
	tr.SetMember(1, true)
	pruned, _ := tr.Graft([]topology.NodeID{1, 0, 2, 3})
	tr.SetMember(3, true) // DCDM.Join marks the member after grafting
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if !tr.OnTree(3) || !tr.OnTree(2) {
		t.Fatal("suffix after root not attached")
	}
	if p, _ := tr.Parent(2); p != 0 {
		t.Fatalf("parent(2) = %d, want 0", p)
	}
	_ = pruned
}

func TestDCDMJoinExistingRelayJustMarks(t *testing.T) {
	d := NewDCDM(fig5Graph(), 0, 1, nil, nil)
	d.Join(4)        // brings in 0-1-2-4
	res := d.Join(2) // 2 is already a relay
	if !res.AlreadyOn || res.Path != nil {
		t.Fatalf("res = %+v, want AlreadyOn with nil path", res)
	}
	if !d.Tree().IsMember(2) {
		t.Fatal("member not marked")
	}
}

func TestDCDMJoinRoot(t *testing.T) {
	d := NewDCDM(fig5Graph(), 0, 1, nil, nil)
	res := d.Join(0)
	if !res.AlreadyOn {
		t.Fatal("root join should be AlreadyOn")
	}
	if d.Tree().Size() != 1 {
		t.Fatal("root join must not grow the tree")
	}
}

func TestDCDMLeaveRecomputesBound(t *testing.T) {
	d := NewDCDM(fig5Graph(), 0, 1, nil, nil)
	d.Join(2) // ul 2
	d.Join(4) // ul 3, bound 3
	if d.Bound() != 3 {
		t.Fatalf("bound = %g, want 3", d.Bound())
	}
	res := d.Leave(4)
	if len(res.Pruned) != 1 || res.Pruned[0] != 4 {
		t.Fatalf("pruned = %v, want [4]", res.Pruned)
	}
	if d.Bound() != 2 {
		t.Fatalf("bound after leave = %g, want 2", d.Bound())
	}
	d.Leave(2)
	if d.Bound() != 0 || d.Tree().Size() != 1 {
		t.Fatalf("after all leaves: bound=%g size=%d", d.Bound(), d.Tree().Size())
	}
}

func TestDCDMKappaBelowOnePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDCDM(fig5Graph(), 0, 0.5, nil, nil)
}

// Property: arbitrary join/leave sequences keep the tree structurally
// valid, keep all members on the tree, and never lose the root.
func TestPropertyDCDMChurnInvariants(t *testing.T) {
	f := func(seed int64, kappaSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := topology.Random(topology.DefaultRandom(25, 4), rng)
		if err != nil {
			return false
		}
		kappa := []float64{1, 1.5, math.Inf(1)}[int(kappaSel)%3]
		d := NewDCDM(g, 0, kappa, nil, nil)
		members := map[topology.NodeID]bool{}
		for op := 0; op < 60; op++ {
			v := topology.NodeID(rng.Intn(g.N()))
			if members[v] {
				d.Leave(v)
				delete(members, v)
			} else {
				res := d.Join(v)
				members[v] = true
				if !res.AlreadyOn && !res.Restructured {
					// A clean graft must respect the bound in force.
					if d.Tree().Delay(v) > d.Bound()+1e-9 {
						return false
					}
				}
			}
			if err := d.Tree().Validate(); err != nil {
				t.Logf("seed %d op %d: %v", seed, op, err)
				return false
			}
			for m := range members {
				if !d.Tree().OnTree(m) || !d.Tree().IsMember(m) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: with the tightest constraint, DCDM's tree delay stays close
// to the optimum (the SPT tree delay, which is a lower bound for any
// tree). The paper reports equality; restructuring can add slack, so we
// allow a small margin per instance and require near-equality on
// average.
func TestDCDMTightestNearSPTDelay(t *testing.T) {
	var ratioSum float64
	const runs = 20
	for seed := int64(0); seed < runs; seed++ {
		rng := rand.New(rand.NewSource(seed))
		wg, err := topology.Waxman(topology.DefaultWaxman(60), rng)
		if err != nil {
			t.Fatal(err)
		}
		g := wg.Graph
		members := pickMembers(rng, g.N(), 15, 0)
		spDelay := topology.NewAllPairs(g, topology.ByDelay)
		spCost := topology.NewAllPairs(g, topology.ByCost)
		d := NewDCDM(g, 0, 1, spDelay, spCost)
		for _, m := range members {
			d.Join(m)
		}
		spt := SPT(g, 0, members, spDelay)
		lo := spt.TreeDelay()
		if lo <= 0 {
			t.Fatal("degenerate SPT delay")
		}
		ratio := d.Tree().TreeDelay() / lo
		if ratio < 1-1e-9 {
			t.Fatalf("seed %d: DCDM delay %g below the SPT lower bound %g", seed, d.Tree().TreeDelay(), lo)
		}
		ratioSum += ratio
	}
	if avg := ratioSum / runs; avg > 1.15 {
		t.Fatalf("tightest DCDM delay averages %.3fx SPT; paper reports ~1x", avg)
	}
}

// pickMembers selects k distinct members, excluding `exclude`.
func pickMembers(rng *rand.Rand, n, k int, exclude topology.NodeID) []topology.NodeID {
	perm := rng.Perm(n)
	var out []topology.NodeID
	for _, v := range perm {
		if topology.NodeID(v) == exclude {
			continue
		}
		out = append(out, topology.NodeID(v))
		if len(out) == k {
			break
		}
	}
	return out
}

// BenchmarkDCDMJoin and friends moved to bench_test.go: they now
// measure steady-state joins/leaves on a 400-node fixture against the
// preserved reference engine.
