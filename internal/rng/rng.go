// Package rng is the single construction point for seeded randomness in
// this reproduction. Every simulation, generator and experiment derives
// its random stream from an explicit integer seed through New (or from a
// parent stream through Split), so identically-seeded runs are
// bit-reproducible. The scmplint noclock analyzer enforces the funnel:
// outside this package (and tests), constructing math/rand generators
// directly or calling the globally-seeded top-level math/rand functions
// is a lint error.
package rng

import "math/rand"

// Rand is the concrete generator type threaded through the codebase; an
// alias so callers need not import math/rand for the type name.
type Rand = rand.Rand

// New returns a deterministic generator for the given seed. Equal seeds
// yield identical streams on every platform and run.
func New(seed int64) *Rand {
	return rand.New(rand.NewSource(seed))
}

// Split derives an independent child generator from parent by drawing
// one value from it. Deriving per-subsystem streams this way keeps a
// single injected seed as the only source of randomness while letting
// subsystems consume their streams in any order (a prerequisite for the
// roadmap's parallel sweeps: each worker gets its own Split).
func Split(parent *Rand) *Rand {
	return New(parent.Int63())
}

// Hash01 is a stateless positional draw: a uniform float64 in [0, 1)
// that is a pure function of (seed, key, n), with no stream position to
// share. Sequential streams serialize their consumers — every draw
// depends on how many draws happened before it anywhere in the run —
// which is exactly what a partitioned simulation cannot provide. A
// positional draw instead indexes an implicit random table: consumers
// that agree on (key, n) read the same value no matter which thread asks
// first, so fault-loss decisions stay identical across any partitioning
// of the event loop. The mixer is splitmix64's finalizer applied to the
// xor-folded inputs; the top 53 bits become the mantissa.
func Hash01(seed int64, key, n uint64) float64 {
	h := uint64(seed) ^ (key * 0x9e3779b97f4a7c15) ^ (n * 0xd1342543de82ef95)
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return float64(h>>11) * (1.0 / (1 << 53))
}
