// Package rng is the single construction point for seeded randomness in
// this reproduction. Every simulation, generator and experiment derives
// its random stream from an explicit integer seed through New (or from a
// parent stream through Split), so identically-seeded runs are
// bit-reproducible. The scmplint noclock analyzer enforces the funnel:
// outside this package (and tests), constructing math/rand generators
// directly or calling the globally-seeded top-level math/rand functions
// is a lint error.
package rng

import "math/rand"

// Rand is the concrete generator type threaded through the codebase; an
// alias so callers need not import math/rand for the type name.
type Rand = rand.Rand

// New returns a deterministic generator for the given seed. Equal seeds
// yield identical streams on every platform and run.
func New(seed int64) *Rand {
	return rand.New(rand.NewSource(seed))
}

// Split derives an independent child generator from parent by drawing
// one value from it. Deriving per-subsystem streams this way keeps a
// single injected seed as the only source of randomness while letting
// subsystems consume their streams in any order (a prerequisite for the
// roadmap's parallel sweeps: each worker gets its own Split).
func Split(parent *Rand) *Rand {
	return New(parent.Int63())
}
