// Package stats provides the small statistical summaries the experiment
// harness needs to aggregate multi-seed runs (the paper averages each
// point over 10 random-generator seeds).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates observations.
type Sample struct {
	xs []float64
}

// Add appends an observation.
func (s *Sample) Add(x float64) { s.xs = append(s.xs, x) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the arithmetic mean, or NaN when empty.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Min returns the smallest observation, or NaN when empty.
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest observation, or NaN when empty.
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// StdDev returns the sample standard deviation (n-1 denominator), or 0
// for fewer than two observations.
func (s *Sample) StdDev() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	mean := s.Mean()
	sum := 0.0
	for _, x := range s.xs {
		d := x - mean
		sum += d * d
	}
	return math.Sqrt(sum / float64(n-1))
}

// StdErr returns the standard error of the mean.
func (s *Sample) StdErr() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(len(s.xs)))
}

// CI95 returns the half-width of an approximate 95% confidence interval
// for the mean (normal approximation, 1.96 sigma).
func (s *Sample) CI95() float64 { return 1.96 * s.StdErr() }

// Median returns the median, or NaN when empty.
func (s *Sample) Median() float64 {
	n := len(s.xs)
	if n == 0 {
		return math.NaN()
	}
	xs := append([]float64(nil), s.xs...)
	sort.Float64s(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// String summarises the sample as "mean ± ci95 (n=N)".
func (s *Sample) String() string {
	return fmt.Sprintf("%.2f ± %.2f (n=%d)", s.Mean(), s.CI95(), s.N())
}
