// Package stats provides the small statistical summaries the experiment
// harness needs to aggregate multi-seed runs (the paper averages each
// point over 10 random-generator seeds).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample accumulates observations.
type Sample struct {
	xs []float64
}

// Add appends an observation.
func (s *Sample) Add(x float64) { s.xs = append(s.xs, x) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the arithmetic mean, or NaN when empty.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Min returns the smallest observation, or NaN when empty.
func (s *Sample) Min() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest observation, or NaN when empty.
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return math.NaN()
	}
	m := s.xs[0]
	for _, x := range s.xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// StdDev returns the sample standard deviation (n-1 denominator), or 0
// for fewer than two observations.
func (s *Sample) StdDev() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	mean := s.Mean()
	sum := 0.0
	for _, x := range s.xs {
		d := x - mean
		sum += d * d
	}
	return math.Sqrt(sum / float64(n-1))
}

// StdErr returns the standard error of the mean.
func (s *Sample) StdErr() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(len(s.xs)))
}

// t95 holds the two-sided 95% Student-t critical values for 1..29
// degrees of freedom (index df-1). At the paper's n=10 the normal
// approximation's 1.96 understates the half-width by ~15% (t_9 = 2.262),
// so small samples use the exact table.
var t95 = [29]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
}

// tCritical95 returns the two-sided 95% critical value for df degrees of
// freedom: exact Student-t up to df=29 (n=30), the normal 1.96 above.
func tCritical95(df int) float64 {
	if df < 1 {
		return 0
	}
	if df <= len(t95) {
		return t95[df-1]
	}
	return 1.96
}

// CI95 returns the half-width of a 95% confidence interval for the mean:
// Student-t critical value times the standard error. With fewer than two
// observations there is no spread estimate and the half-width is 0.
func (s *Sample) CI95() float64 { return tCritical95(s.N()-1) * s.StdErr() }

// Median returns the median, or NaN when empty.
func (s *Sample) Median() float64 {
	n := len(s.xs)
	if n == 0 {
		return math.NaN()
	}
	xs := append([]float64(nil), s.xs...)
	sort.Float64s(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// String summarises the sample as "mean ± ci95 (n=N)".
func (s *Sample) String() string {
	return fmt.Sprintf("%.2f ± %.2f (n=%d)", s.Mean(), s.CI95(), s.N())
}
