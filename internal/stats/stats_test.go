package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func add(s *Sample, xs ...float64) {
	for _, x := range xs {
		s.Add(x)
	}
}

func TestEmpty(t *testing.T) {
	var s Sample
	if s.N() != 0 {
		t.Fatal("N != 0")
	}
	for name, v := range map[string]float64{"mean": s.Mean(), "min": s.Min(), "max": s.Max(), "median": s.Median()} {
		if !math.IsNaN(v) {
			t.Fatalf("%s of empty sample = %g, want NaN", name, v)
		}
	}
	if s.StdDev() != 0 || s.StdErr() != 0 || s.CI95() != 0 {
		t.Fatal("spread of empty sample should be 0")
	}
}

func TestBasics(t *testing.T) {
	var s Sample
	add(&s, 2, 4, 4, 4, 5, 5, 7, 9)
	if s.Mean() != 5 {
		t.Fatalf("mean = %g, want 5", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %g/%g", s.Min(), s.Max())
	}
	wantSD := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.StdDev()-wantSD) > 1e-12 {
		t.Fatalf("stddev = %g, want %g", s.StdDev(), wantSD)
	}
	if math.Abs(s.Median()-4.5) > 1e-12 {
		t.Fatalf("median = %g, want 4.5", s.Median())
	}
}

func TestMedianOdd(t *testing.T) {
	var s Sample
	add(&s, 9, 1, 5)
	if s.Median() != 5 {
		t.Fatalf("median = %g, want 5", s.Median())
	}
}

func TestSingleObservation(t *testing.T) {
	var s Sample
	s.Add(3)
	if s.Mean() != 3 || s.Median() != 3 || s.StdDev() != 0 {
		t.Fatal("single-observation stats wrong")
	}
}

func TestString(t *testing.T) {
	var s Sample
	add(&s, 1, 2, 3)
	// stderr = 1/sqrt(3); half-width = t_2 * stderr = 4.303 * 0.5774.
	if got := s.String(); got != "2.00 ± 2.48 (n=3)" {
		t.Fatalf("String = %q", got)
	}
}

// TestCI95StudentT pins the small-n critical values: the half-width must
// use the Student-t table up to n=30 and the normal 1.96 above. The
// paper's experiments average n=10 seeds, where t_9 = 2.262 (the normal
// approximation would understate the interval by ~15%).
func TestCI95StudentT(t *testing.T) {
	cases := []struct {
		n    int
		want float64 // critical value CI95 must multiply StdErr by
	}{
		{2, 12.706}, // df=1
		{3, 4.303},
		{5, 2.776},
		{10, 2.262}, // the paper's seed count
		{20, 2.093},
		{30, 2.045}, // last table entry
		{31, 1.96},  // normal fallback
		{100, 1.96},
	}
	for _, c := range cases {
		var s Sample
		for i := 0; i < c.n; i++ {
			s.Add(float64(i % 7)) // any spread-y values
		}
		want := c.want * s.StdErr()
		if got := s.CI95(); math.Abs(got-want) > 1e-12 {
			t.Fatalf("n=%d: CI95 = %g, want %g (t=%g)", c.n, got, want, c.want)
		}
	}
}

// TestCI95KnownValue pins one fully worked example: 0..9 has stddev
// sqrt(82.5/9), stderr sqrt(82.5/9)/sqrt(10), half-width 2.262 times
// that.
func TestCI95KnownValue(t *testing.T) {
	var s Sample
	for i := 0; i < 10; i++ {
		s.Add(float64(i))
	}
	want := 2.262 * math.Sqrt(82.5/9) / math.Sqrt(10)
	if got := s.CI95(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("CI95 = %v, want %v", got, want)
	}
	var one Sample
	one.Add(42)
	if one.CI95() != 0 {
		t.Fatal("single observation must have zero half-width")
	}
}

// Property: min <= median <= max and min <= mean <= max.
func TestPropertyOrderStatistics(t *testing.T) {
	f := func(raw []float64) bool {
		var s Sample
		for _, x := range raw {
			// Reject non-finite inputs and magnitudes whose sum would
			// overflow float64; experiment metrics are modest reals.
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e300 {
				continue
			}
			s.Add(x)
		}
		if s.N() == 0 {
			return true
		}
		return s.Min() <= s.Median() && s.Median() <= s.Max() &&
			s.Min() <= s.Mean()+1e-9 && s.Mean() <= s.Max()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Median does not mutate insertion order state (Add after
// Median still works, and repeated Median calls agree).
func TestMedianPure(t *testing.T) {
	var s Sample
	add(&s, 3, 1, 2)
	m1 := s.Median()
	m2 := s.Median()
	if m1 != m2 {
		t.Fatal("median unstable")
	}
	s.Add(10)
	if s.Max() != 10 {
		t.Fatal("sample corrupted by Median")
	}
}
