package igmp

import (
	"testing"

	"scmp/internal/des"
	"scmp/internal/netsim"
	"scmp/internal/topology"
)

func querierSetup(t *testing.T) (*Hosts, *countingProto, *netsim.Network) {
	t.Helper()
	g := topology.New(2)
	g.MustAddEdge(0, 1, 1, 1)
	p := newCounting()
	n := netsim.New(g, p)
	return NewHosts(n), p, n
}

func TestSilentHostAgesOut(t *testing.T) {
	h, p, n := querierSetup(t)
	q := NewQuerier(h, n.Sched, 0, 10, 2)
	q.Report("crasher", 7)
	// The host never reports again: it must age out after 2 missed
	// rounds (i.e. by ~t=30).
	n.RunUntil(50)
	if p.leaves[0] != 1 {
		t.Fatalf("leaves = %d, want 1 (aged out)", p.leaves[0])
	}
	if h.Count(0, 7) != 0 {
		t.Fatal("membership not withdrawn")
	}
	q.Stop()
}

func TestRespondingHostSurvives(t *testing.T) {
	h, p, n := querierSetup(t)
	q := NewQuerier(h, n.Sched, 0, 10, 2)
	q.Report("laptop", 7)
	// Respond every round.
	for tick := 10.0; tick <= 100; tick += 10 {
		n.Sched.At(des.Time(tick)+1, func() { q.Report("laptop", 7) })
	}
	n.RunUntil(100)
	if p.leaves[0] != 0 {
		t.Fatalf("leaves = %d, want 0 (host kept reporting)", p.leaves[0])
	}
	if h.Count(0, 7) != 1 {
		t.Fatal("membership lost despite reports")
	}
	q.Stop()
}

func TestExplicitLeaveBeatsAging(t *testing.T) {
	h, p, n := querierSetup(t)
	q := NewQuerier(h, n.Sched, 0, 10, 2)
	q.Report("tidy", 7)
	n.Sched.At(5, func() { q.Leave("tidy", 7) })
	n.RunUntil(50)
	if p.leaves[0] != 1 {
		t.Fatalf("leaves = %d, want exactly 1", p.leaves[0])
	}
	_ = h
	q.Stop()
}

func TestStopEndsCycle(t *testing.T) {
	h, _, n := querierSetup(t)
	q := NewQuerier(h, n.Sched, 0, 10, 2)
	q.Report("host", 7)
	q.Stop()
	n.RunUntil(200)
	// Stopped querier never ages anyone out.
	if h.Count(0, 7) != 1 {
		t.Fatal("stopped querier aged out a host")
	}
}

func TestAgingIsPerHost(t *testing.T) {
	h, _, n := querierSetup(t)
	q := NewQuerier(h, n.Sched, 0, 10, 2)
	q.Report("quiet", 7)
	q.Report("chatty", 7)
	for tick := 10.0; tick <= 100; tick += 10 {
		n.Sched.At(des.Time(tick)+1, func() { q.Report("chatty", 7) })
	}
	n.RunUntil(100)
	// quiet aged out, chatty survives; DR still has one member so no
	// protocol leave fired.
	if h.Count(0, 7) != 1 {
		t.Fatalf("Count = %d, want 1", h.Count(0, 7))
	}
	q.Stop()
}

func TestQuerierGuards(t *testing.T) {
	h, _, n := querierSetup(t)
	defer func() {
		if recover() == nil {
			t.Fatal("zero interval accepted")
		}
	}()
	NewQuerier(h, n.Sched, 0, 0, 2)
}
