package igmp

import (
	"scmp/internal/des"
	"scmp/internal/packet"
	"scmp/internal/topology"
)

// Querier models the DR's soft-state membership cycle (§II-C: "The DR
// is responsible for sending Host Membership Query messages to discover
// which groups have members on their subnet. Hosts respond to a Query
// by generating Host Membership Reports"). Hosts that stop responding
// — crashed or unplugged, never sending an IGMP leave — age out after
// missing a configurable number of query rounds, and the DR withdraws
// the membership exactly as if the last host had left.
type Querier struct {
	hosts    *Hosts
	sched    *des.Scheduler
	dr       topology.NodeID
	interval des.Time
	misses   int // query rounds a host may miss before aging out

	// lastSeen[group][host] = time of the host's last report.
	lastSeen map[packet.GroupID]map[string]des.Time
	stopped  bool
}

// NewQuerier starts a query cycle at dr: a query fires every interval;
// a host missing `misses` consecutive rounds is aged out. The cycle
// runs until Stop.
func NewQuerier(h *Hosts, sched *des.Scheduler, dr topology.NodeID, interval des.Time, misses int) *Querier {
	if interval <= 0 {
		panic("igmp: query interval must be positive")
	}
	if misses < 1 {
		misses = 2
	}
	q := &Querier{
		hosts:    h,
		sched:    sched,
		dr:       dr,
		interval: interval,
		misses:   misses,
		lastSeen: make(map[packet.GroupID]map[string]des.Time),
	}
	sched.After(interval, q.query)
	return q
}

// Report records a host's membership report (also registering the
// membership, so callers use the Querier instead of Hosts.Join
// directly).
func (q *Querier) Report(host string, g packet.GroupID) {
	if q.lastSeen[g] == nil {
		q.lastSeen[g] = make(map[string]des.Time)
	}
	q.lastSeen[g][host] = q.sched.Now()
	q.hosts.Join(q.dr, host, g)
}

// Leave records an explicit IGMP leave.
func (q *Querier) Leave(host string, g packet.GroupID) {
	delete(q.lastSeen[g], host)
	q.hosts.Leave(q.dr, host, g)
}

// Stop ends the query cycle.
func (q *Querier) Stop() { q.stopped = true }

// query ages out silent hosts and reschedules itself.
func (q *Querier) query() {
	if q.stopped {
		return
	}
	deadline := q.sched.Now() - des.Time(q.misses)*q.interval
	for g, hosts := range q.lastSeen {
		for host, seen := range hosts {
			if seen < deadline {
				delete(hosts, host)
				q.hosts.Leave(q.dr, host, g)
			}
		}
		if len(hosts) == 0 {
			delete(q.lastSeen, g)
		}
	}
	q.sched.After(q.interval, q.query)
}
