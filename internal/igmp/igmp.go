// Package igmp models the paper's group-management layer (§II-C): hosts
// live on subnets behind a designated router (DR); IGMP keeps group
// membership transparent to the routing protocol, which only learns the
// edges — a subnet gaining its first member host of a group, or losing
// its last one. Report suppression is modelled by the DR counting member
// hosts per group and calling the routing protocol only on 0<->1
// transitions, exactly as the paper's member joining / leaving
// procedures describe.
package igmp

import (
	"sort"

	"scmp/internal/netsim"
	"scmp/internal/packet"
	"scmp/internal/topology"
)

// Hosts tracks member hosts per (designated router, group).
type Hosts struct {
	net     *netsim.Network
	subnets map[topology.NodeID]map[packet.GroupID]map[string]bool
}

// NewHosts returns an IGMP layer bound to a network.
func NewHosts(n *netsim.Network) *Hosts {
	return &Hosts{
		net:     n,
		subnets: make(map[topology.NodeID]map[packet.GroupID]map[string]bool),
	}
}

// Join registers host (an opaque identifier, e.g. "pc7") on dr's subnet
// as a member of g. The first host of a group on a subnet triggers the
// routing protocol's HostJoin. Duplicate joins are idempotent.
func (h *Hosts) Join(dr topology.NodeID, host string, g packet.GroupID) {
	byGroup := h.subnets[dr]
	if byGroup == nil {
		byGroup = make(map[packet.GroupID]map[string]bool)
		h.subnets[dr] = byGroup
	}
	members := byGroup[g]
	if members == nil {
		members = make(map[string]bool)
		byGroup[g] = members
	}
	if members[host] {
		return
	}
	members[host] = true
	if len(members) == 1 {
		h.net.HostJoin(dr, g)
	}
}

// Leave removes host from g on dr's subnet. The last host leaving
// triggers the routing protocol's HostLeave. Unknown hosts are ignored.
func (h *Hosts) Leave(dr topology.NodeID, host string, g packet.GroupID) {
	members := h.subnets[dr][g]
	if members == nil || !members[host] {
		return
	}
	delete(members, host)
	if len(members) == 0 {
		delete(h.subnets[dr], g)
		h.net.HostLeave(dr, g)
	}
}

// Count returns the number of member hosts of g on dr's subnet.
func (h *Hosts) Count(dr topology.NodeID, g packet.GroupID) int {
	return len(h.subnets[dr][g])
}

// MemberRouters returns the DRs with at least one member host of g,
// sorted.
func (h *Hosts) MemberRouters(g packet.GroupID) []topology.NodeID {
	var out []topology.NodeID
	for dr, byGroup := range h.subnets {
		if len(byGroup[g]) > 0 {
			out = append(out, dr)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
