package igmp

import (
	"testing"

	"scmp/internal/core"
	"scmp/internal/netsim"
	"scmp/internal/packet"
	"scmp/internal/topology"
)

// ringGraph: 0-1-2-3-4-0, unit delay/cost.
func ringGraph() *topology.Graph {
	g := topology.New(5)
	g.MustAddEdge(0, 1, 1, 1)
	g.MustAddEdge(1, 2, 1, 1)
	g.MustAddEdge(2, 3, 1, 1)
	g.MustAddEdge(3, 4, 1, 1)
	g.MustAddEdge(4, 0, 1, 1)
	return g
}

// A scheduled node crash must flow netsim -> SubnetFaults -> SharedSubnet:
// the backup router wins the DR election, memberships migrate, and SCMP
// keeps delivering — all inside the deterministic event stream.
func TestCrashDrivenDRReelection(t *testing.T) {
	grp := packet.GroupID(1)
	scmp := core.New(core.Config{MRouter: 0})
	n := netsim.New(ringGraph(), scmp)
	f := n.InstallFaults(netsim.FaultPlan{})
	h := NewHosts(n)
	s := NewSharedSubnet(h, 2, 3)
	NewSubnetFaults(n, s)

	s.Join("pc1", grp)
	n.Run()
	if dr, _ := s.DR(); dr != 2 {
		t.Fatalf("initial DR = %d, want 2", dr)
	}
	seq := n.SendData(0, grp, 100)
	n.Run()
	if missing, _ := n.CheckDelivery(seq); len(missing) != 0 {
		t.Fatalf("pre-crash missing = %v", missing)
	}

	// Crash the DR: router 3 must take over and re-register "pc1".
	f.ScheduleNodeDown(100, 2)
	n.Run()
	if dr, _ := s.DR(); dr != 3 {
		t.Fatalf("post-crash DR = %d, want 3", dr)
	}
	if n.IsMember(2, grp) || !n.IsMember(3, grp) {
		t.Fatalf("membership did not migrate: members = %v", n.Members(grp))
	}
	seq = n.SendData(0, grp, 100)
	n.Run()
	if missing, anomalous := n.CheckDelivery(seq); len(missing) != 0 || len(anomalous) != 0 {
		t.Fatalf("post-crash delivery: missing=%v anomalous=%v", missing, anomalous)
	}

	// Restart: the lower-addressed router pre-empts the election back.
	f.ScheduleNodeUp(300, 2)
	n.Run()
	if dr, _ := s.DR(); dr != 2 {
		t.Fatalf("post-restart DR = %d, want 2", dr)
	}
	if !n.IsMember(2, grp) || n.IsMember(3, grp) {
		t.Fatalf("membership did not migrate back: members = %v", n.Members(grp))
	}
	seq = n.SendData(0, grp, 100)
	n.Run()
	if missing, anomalous := n.CheckDelivery(seq); len(missing) != 0 || len(anomalous) != 0 {
		t.Fatalf("post-restart delivery: missing=%v anomalous=%v", missing, anomalous)
	}
}

// Link faults must not disturb subnets; a crash of a non-subnet router
// must not disturb the election either.
func TestSubnetFaultsIgnoresIrrelevantEvents(t *testing.T) {
	grp := packet.GroupID(1)
	scmp := core.New(core.Config{MRouter: 0})
	n := netsim.New(ringGraph(), scmp)
	f := n.InstallFaults(netsim.FaultPlan{})
	h := NewHosts(n)
	s := NewSharedSubnet(h, 2, 3)
	NewSubnetFaults(n, s)
	s.Join("pc1", grp)
	n.Run()

	f.ScheduleLinkDown(50, 0, 4)
	f.ScheduleNodeDown(60, 1)
	n.Run()
	if dr, _ := s.DR(); dr != 2 {
		t.Fatalf("DR = %d after unrelated faults, want 2", dr)
	}
	if !n.IsMember(2, grp) {
		t.Fatal("membership lost to unrelated faults")
	}
}
