package igmp_test

import (
	"fmt"

	"scmp/internal/core"
	"scmp/internal/igmp"
	"scmp/internal/netsim"
	"scmp/internal/topology"
)

// Example shows IGMP report suppression and DR failover on a shared
// subnet: the routing protocol only ever sees membership edges, and a
// dead designated router hands its registrations to the next one.
func Example() {
	g := topology.New(4)
	g.MustAddEdge(0, 1, 1, 1)
	g.MustAddEdge(0, 2, 1, 1)
	g.MustAddEdge(1, 2, 1, 1)
	g.MustAddEdge(2, 3, 1, 1)
	scmp := core.New(core.Config{MRouter: 0})
	net := netsim.New(g, scmp)
	hosts := igmp.NewHosts(net)
	subnet := igmp.NewSharedSubnet(hosts, 1, 2) // two candidate routers

	dr, _ := subnet.DR()
	fmt.Println("designated router:", dr)

	subnet.Join("laptop", 7)
	subnet.Join("phone", 7) // suppressed: same subnet, same group
	net.Run()
	fmt.Println("members on subnet:", hosts.Count(dr, 7))
	fmt.Println("member routers:", hosts.MemberRouters(7))

	subnet.RouterDown(1) // DR dies; router 2 takes over and re-joins
	net.Run()
	newDR, _ := subnet.DR()
	fmt.Println("new DR:", newDR, "member routers:", hosts.MemberRouters(7))
	// Output:
	// designated router: 1
	// members on subnet: 2
	// member routers: [1]
	// new DR: 2 member routers: [2]
}
