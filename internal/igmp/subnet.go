package igmp

import (
	"fmt"
	"sort"

	"scmp/internal/packet"
	"scmp/internal/topology"
)

// SharedSubnet models a multi-access subnet with several attached
// routers, of which one is elected designated router (§II-C: "one of
// the routers connected to the same subnet is selected to act as the
// designated router (DR). The DR is responsible for sending Host
// Membership Query messages"). The election rule is the classic
// lowest-address-wins among live routers. When the DR fails, the next
// router takes over and re-registers the subnet's memberships with the
// routing protocol.
type SharedSubnet struct {
	hosts   *Hosts
	routers []topology.NodeID
	alive   map[topology.NodeID]bool
	// members mirrors the subnet's host membership so it can be
	// re-registered under a new DR.
	members map[packet.GroupID]map[string]bool
}

// NewSharedSubnet attaches a subnet with the given candidate routers
// (at least one) to an IGMP layer.
func NewSharedSubnet(h *Hosts, routers ...topology.NodeID) *SharedSubnet {
	if len(routers) == 0 {
		panic("igmp: a subnet needs at least one router")
	}
	seen := map[topology.NodeID]bool{}
	for _, r := range routers {
		if seen[r] {
			panic(fmt.Sprintf("igmp: duplicate subnet router %d", r))
		}
		seen[r] = true
	}
	sorted := append([]topology.NodeID(nil), routers...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	s := &SharedSubnet{
		hosts:   h,
		routers: sorted,
		alive:   make(map[topology.NodeID]bool),
		members: make(map[packet.GroupID]map[string]bool),
	}
	for _, r := range sorted {
		s.alive[r] = true
	}
	return s
}

// DR returns the elected designated router: the lowest-address live
// router; ok is false when every router is down.
func (s *SharedSubnet) DR() (topology.NodeID, bool) {
	for _, r := range s.routers {
		if s.alive[r] {
			return r, true
		}
	}
	return -1, false
}

// Join registers a member host on the subnet; the current DR reports it.
func (s *SharedSubnet) Join(host string, g packet.GroupID) {
	dr, ok := s.DR()
	if !ok {
		return // isolated subnet: nothing to report to
	}
	if s.members[g] == nil {
		s.members[g] = make(map[string]bool)
	}
	s.members[g][host] = true
	s.hosts.Join(dr, host, g)
}

// Leave removes a member host from the subnet.
func (s *SharedSubnet) Leave(host string, g packet.GroupID) {
	if s.members[g] == nil || !s.members[g][host] {
		return
	}
	delete(s.members[g], host)
	if len(s.members[g]) == 0 {
		delete(s.members, g)
	}
	if dr, ok := s.DR(); ok {
		s.hosts.Leave(dr, host, g)
	}
}

// RouterDown marks a router dead. If it was the DR, the next live
// router wins the election and re-registers the subnet's memberships
// (the old DR's registrations are withdrawn first, so the routing
// protocol prunes its branch and grafts the new one).
func (s *SharedSubnet) RouterDown(r topology.NodeID) {
	if !s.alive[r] {
		return
	}
	oldDR, hadDR := s.DR()
	s.alive[r] = false
	if !hadDR || oldDR != r {
		return // a backup died: no re-election needed
	}
	s.withdraw(oldDR)
	if newDR, ok := s.DR(); ok {
		s.register(newDR)
	}
}

// RouterUp revives a router. If it outranks the current DR it takes
// over (pre-emptive election, like IGMPv2 querier election).
func (s *SharedSubnet) RouterUp(r topology.NodeID) {
	if s.alive[r] {
		return
	}
	oldDR, hadDR := s.DR()
	s.alive[r] = true
	newDR, _ := s.DR()
	if hadDR && newDR != oldDR {
		s.withdraw(oldDR)
		s.register(newDR)
	} else if !hadDR {
		s.register(newDR)
	}
}

func (s *SharedSubnet) withdraw(dr topology.NodeID) {
	for g, hosts := range s.members {
		for host := range hosts {
			s.hosts.Leave(dr, host, g)
		}
	}
}

func (s *SharedSubnet) register(dr topology.NodeID) {
	for g, hosts := range s.members {
		for host := range hosts {
			s.hosts.Join(dr, host, g)
		}
	}
}
