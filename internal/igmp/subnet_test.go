package igmp

import (
	"math/rand"
	"testing"

	"scmp/internal/core"
	"scmp/internal/netsim"
	"scmp/internal/packet"
	"scmp/internal/topology"
)

func subnetSetup(t *testing.T) (*Hosts, *countingProto) {
	t.Helper()
	g := topology.New(4)
	g.MustAddEdge(0, 1, 1, 1)
	g.MustAddEdge(1, 2, 1, 1)
	g.MustAddEdge(2, 3, 1, 1)
	p := newCounting()
	n := netsim.New(g, p)
	return NewHosts(n), p
}

func TestDRElectionLowestWins(t *testing.T) {
	h, _ := subnetSetup(t)
	s := NewSharedSubnet(h, 3, 1, 2)
	dr, ok := s.DR()
	if !ok || dr != 1 {
		t.Fatalf("DR = %d/%v, want 1", dr, ok)
	}
}

func TestSubnetJoinGoesToDR(t *testing.T) {
	h, p := subnetSetup(t)
	s := NewSharedSubnet(h, 2, 1)
	s.Join("a", 7)
	if p.joins[1] != 1 || p.joins[2] != 0 {
		t.Fatalf("joins = %v", p.joins)
	}
}

func TestDRFailoverMigratesMembership(t *testing.T) {
	h, p := subnetSetup(t)
	s := NewSharedSubnet(h, 1, 2)
	s.Join("a", 7)
	s.Join("b", 8)
	s.RouterDown(1)
	dr, _ := s.DR()
	if dr != 2 {
		t.Fatalf("new DR = %d, want 2", dr)
	}
	// Old DR withdrew both groups; new DR re-registered them.
	if p.leaves[1] != 2 {
		t.Fatalf("old DR leaves = %d, want 2", p.leaves[1])
	}
	if p.joins[2] != 2 {
		t.Fatalf("new DR joins = %d, want 2", p.joins[2])
	}
}

func TestBackupRouterDeathIsQuiet(t *testing.T) {
	h, p := subnetSetup(t)
	s := NewSharedSubnet(h, 1, 2)
	s.Join("a", 7)
	joins, leaves := p.joins[1], p.leaves[1]
	s.RouterDown(2)
	if p.joins[1] != joins || p.leaves[1] != leaves {
		t.Fatal("backup death disturbed the DR")
	}
}

func TestPreemptiveReelectionOnRouterUp(t *testing.T) {
	h, p := subnetSetup(t)
	s := NewSharedSubnet(h, 1, 2)
	s.Join("a", 7)
	s.RouterDown(1) // DR -> 2
	s.RouterUp(1)   // 1 outranks 2: takes back over
	dr, _ := s.DR()
	if dr != 1 {
		t.Fatalf("DR = %d, want 1", dr)
	}
	if p.joins[1] != 2 { // initial + re-registration
		t.Fatalf("joins at 1 = %d, want 2", p.joins[1])
	}
}

func TestAllRoutersDownThenUp(t *testing.T) {
	h, p := subnetSetup(t)
	s := NewSharedSubnet(h, 1, 2)
	s.Join("a", 7)
	s.RouterDown(1)
	s.RouterDown(2)
	if _, ok := s.DR(); ok {
		t.Fatal("DR on a dead subnet")
	}
	s.Leave("zzz", 7) // unknown host while down: harmless
	s.RouterUp(2)
	dr, _ := s.DR()
	if dr != 2 {
		t.Fatalf("DR = %d, want 2", dr)
	}
	if p.joins[2] == 0 {
		t.Fatal("membership not re-registered after revival")
	}
}

func TestSubnetGuards(t *testing.T) {
	h, _ := subnetSetup(t)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty router list accepted")
			}
		}()
		NewSharedSubnet(h)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate routers accepted")
			}
		}()
		NewSharedSubnet(h, 1, 1)
	}()
}

func TestIdempotentRouterTransitions(t *testing.T) {
	h, _ := subnetSetup(t)
	s := NewSharedSubnet(h, 1, 2)
	s.RouterUp(1)   // already up: no-op
	s.RouterDown(3) // not a subnet router... marked dead harmlessly
	s.RouterDown(1)
	s.RouterDown(1) // already down: no-op
	if dr, _ := s.DR(); dr != 2 {
		t.Fatalf("DR = %d", dr)
	}
}

// End-to-end: a DR failover on a shared subnet keeps SCMP delivery
// working — the new DR joins, the protocol grafts it, data flows.
func TestSubnetDRFailoverWithSCMP(t *testing.T) {
	g, err := topology.Random(topology.DefaultRandom(15, 4), rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	scmp := core.New(core.Config{MRouter: 0, Kappa: 1.5})
	n := netsim.New(g, scmp)
	h := NewHosts(n)
	s := NewSharedSubnet(h, 5, 9)
	s.Join("laptop", 1)
	n.Run()
	seq := n.SendData(0, 1, 100)
	n.Run()
	if missing, _ := n.CheckDelivery(seq); len(missing) != 0 {
		t.Fatalf("pre-failover missing = %v", missing)
	}
	s.RouterDown(5)
	n.Run()
	seq = n.SendData(0, 1, 100)
	n.Run()
	missing, anomalous := n.CheckDelivery(seq)
	if len(missing) != 0 || len(anomalous) != 0 {
		t.Fatalf("post-failover: missing=%v anomalous=%v", missing, anomalous)
	}
	if !n.IsMember(9, packet.GroupID(1)) || n.IsMember(5, packet.GroupID(1)) {
		t.Fatal("ground truth membership did not migrate")
	}
}
