package igmp

import (
	"scmp/internal/netsim"
	"scmp/internal/topology"
)

// SubnetFaults bridges the fault-injection layer to the subnet model:
// registered as a netsim.FaultListener, it translates node crashes and
// restarts into RouterDown/RouterUp on every attached shared subnet, so
// DR re-election is driven by the same deterministic fault schedule as
// the rest of the simulation. Link events do not affect subnets (a
// subnet is a broadcast domain, not a point-to-point link).
type SubnetFaults struct {
	subnets []*SharedSubnet
}

var _ netsim.FaultListener = (*SubnetFaults)(nil)

// NewSubnetFaults builds the adapter and registers it with the
// network's installed fault layer (install faults first).
func NewSubnetFaults(n *netsim.Network, subnets ...*SharedSubnet) *SubnetFaults {
	f := &SubnetFaults{subnets: subnets}
	n.Faults().AddListener(f)
	return f
}

// Attach adds another subnet to the fan-out.
func (f *SubnetFaults) Attach(s *SharedSubnet) { f.subnets = append(f.subnets, s) }

// LinkDown is a no-op: subnets only care about router liveness.
func (f *SubnetFaults) LinkDown(u, v topology.NodeID) {}

// LinkUp is a no-op.
func (f *SubnetFaults) LinkUp(u, v topology.NodeID) {}

// NodeDown marks the crashed router dead on every subnet, re-electing
// DRs and migrating memberships where it mattered.
func (f *SubnetFaults) NodeDown(n topology.NodeID) {
	for _, s := range f.subnets {
		s.RouterDown(n)
	}
}

// NodeUp revives the router on every subnet (pre-emptive re-election).
func (f *SubnetFaults) NodeUp(n topology.NodeID) {
	for _, s := range f.subnets {
		s.RouterUp(n)
	}
}
