package igmp

import (
	"testing"

	"scmp/internal/netsim"
	"scmp/internal/packet"
	"scmp/internal/topology"
)

// countingProto counts HostJoin/HostLeave edges per router.
type countingProto struct {
	joins, leaves map[topology.NodeID]int
}

func newCounting() *countingProto {
	return &countingProto{joins: map[topology.NodeID]int{}, leaves: map[topology.NodeID]int{}}
}

func (c *countingProto) Name() string                                          { return "count" }
func (c *countingProto) Attach(*netsim.Network)                                {}
func (c *countingProto) HandlePacket(topology.NodeID, *netsim.Packet)          {}
func (c *countingProto) HostJoin(n topology.NodeID, _ packet.GroupID)          { c.joins[n]++ }
func (c *countingProto) HostLeave(n topology.NodeID, _ packet.GroupID)         { c.leaves[n]++ }
func (c *countingProto) SendData(topology.NodeID, packet.GroupID, int, uint64) {}

func setup() (*Hosts, *countingProto) {
	g := topology.New(2)
	g.MustAddEdge(0, 1, 1, 1)
	p := newCounting()
	n := netsim.New(g, p)
	return NewHosts(n), p
}

func TestFirstHostTriggersJoin(t *testing.T) {
	h, p := setup()
	h.Join(0, "a", 7)
	h.Join(0, "b", 7) // suppressed
	if p.joins[0] != 1 {
		t.Fatalf("joins = %d, want 1 (report suppression)", p.joins[0])
	}
	if h.Count(0, 7) != 2 {
		t.Fatalf("Count = %d", h.Count(0, 7))
	}
}

func TestDuplicateJoinIdempotent(t *testing.T) {
	h, p := setup()
	h.Join(0, "a", 7)
	h.Join(0, "a", 7)
	if p.joins[0] != 1 || h.Count(0, 7) != 1 {
		t.Fatalf("joins=%d count=%d", p.joins[0], h.Count(0, 7))
	}
}

func TestLastHostTriggersLeave(t *testing.T) {
	h, p := setup()
	h.Join(0, "a", 7)
	h.Join(0, "b", 7)
	h.Leave(0, "a", 7)
	if p.leaves[0] != 0 {
		t.Fatal("leave fired while members remain")
	}
	h.Leave(0, "b", 7)
	if p.leaves[0] != 1 {
		t.Fatalf("leaves = %d, want 1", p.leaves[0])
	}
	if h.Count(0, 7) != 0 {
		t.Fatal("count not zero")
	}
}

func TestLeaveUnknownHostIgnored(t *testing.T) {
	h, p := setup()
	h.Leave(0, "ghost", 7)
	if p.leaves[0] != 0 {
		t.Fatal("phantom leave")
	}
}

func TestGroupsIndependent(t *testing.T) {
	h, p := setup()
	h.Join(0, "a", 1)
	h.Join(0, "a", 2)
	if p.joins[0] != 2 {
		t.Fatalf("joins = %d, want 2 (one per group)", p.joins[0])
	}
	h.Leave(0, "a", 1)
	if p.leaves[0] != 1 || h.Count(0, 2) != 1 {
		t.Fatal("group isolation broken")
	}
}

func TestMemberRouters(t *testing.T) {
	h, _ := setup()
	h.Join(1, "x", 7)
	h.Join(0, "y", 7)
	got := h.MemberRouters(7)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("MemberRouters = %v", got)
	}
	h.Leave(0, "y", 7)
	got = h.MemberRouters(7)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("MemberRouters = %v", got)
	}
}

func TestRejoinAfterFullLeave(t *testing.T) {
	h, p := setup()
	h.Join(0, "a", 7)
	h.Leave(0, "a", 7)
	h.Join(0, "a", 7)
	if p.joins[0] != 2 || p.leaves[0] != 1 {
		t.Fatalf("joins=%d leaves=%d", p.joins[0], p.leaves[0])
	}
}
