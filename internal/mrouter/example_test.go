package mrouter_test

import (
	"fmt"

	"scmp/internal/fabric"
	"scmp/internal/mrouter"
	"scmp/internal/packet"
)

// Example pushes a burst of cells from three conference sites through
// the m-router's data path: the sandwich fabric merges simultaneous
// same-group cells into one output cell per slot.
func Example() {
	f, _ := fabric.New(8)
	fcfg, _ := f.Configure(map[packet.GroupID]fabric.GroupConn{
		1: {Inputs: []int{0, 1, 2}, Output: 4},
	})
	m := mrouter.New(fcfg, mrouter.Config{})
	_ = m.Arrive(0, 100)
	_ = m.Arrive(1, 101)
	_ = m.Arrive(2, 102)
	sent := m.Step()
	fmt.Printf("merged %d sources onto output %d in one slot\n",
		len(sent[0].Tags), sent[0].Output)
	st := m.Stats()
	fmt.Printf("arrived=%d merged=%d transmitted=%d\n",
		st.Arrived, st.MergedCells, st.Transmitted)
	// Output:
	// merged 3 sources onto output 4 in one slot
	// arrived=3 merged=1 transmitted=1
}
