// Package mrouter models the m-router's internal data path, the §II-B
// architecture of Fig. 2(b): input buffers feed an n×n sandwich
// switching fabric (see internal/fabric) whose merged per-group cells
// land in output buffers that drain to the network.
//
// Time advances in synchronous cell slots. Each slot:
//
//  1. every non-empty input buffer offers its head cell to the fabric;
//  2. the fabric merges the offered cells group-wise (a conference
//     switch combines simultaneous sources — it never queues one
//     group member behind another) and delivers each merged cell to
//     its group's output buffer, dropping it if that buffer is full;
//  3. every non-empty output buffer transmits one cell to the network.
//
// The model exposes the numbers the paper's argument needs: the
// m-router sustains one merged cell per group per slot regardless of
// how many sources are active (no cross-group head-of-line blocking),
// and latency = input queueing + the fabric's pipeline depth + output
// queueing.
package mrouter

import (
	"errors"
	"fmt"
	"sort"

	"scmp/internal/fabric"
	"scmp/internal/packet"
)

// Config sizes the buffers.
type Config struct {
	InputDepth  int // cells per input buffer (default 16)
	OutputDepth int // cells per output buffer (default 16)
}

// Cell is one fixed-size unit of multicast payload entering an input
// port. Tag is caller-chosen identity for tracing.
type Cell struct {
	Input int
	Tag   uint64
	enq   int // slot the cell entered its input buffer
}

// Merged is one group-merged cell leaving an output port.
type Merged struct {
	Slot   int // slot the cell left the m-router
	Output int
	Group  packet.GroupID
	Tags   []uint64 // tags of the merged source cells
}

// Stats accumulates the data-path counters.
type Stats struct {
	Arrived       uint64 // cells accepted into input buffers
	DroppedInput  uint64 // cells rejected: input buffer full
	MergedCells   uint64 // merged cells produced by the fabric
	DroppedOutput uint64 // merged cells dropped: output buffer full
	Transmitted   uint64 // merged cells sent to the network
	latencySum    uint64
}

// MeanLatency returns the mean slots from a source cell's arrival to
// its merged cell's transmission (including the fabric pipeline).
func (s Stats) MeanLatency() float64 {
	if s.Transmitted == 0 {
		return 0
	}
	return float64(s.latencySum) / float64(s.Transmitted)
}

type mergedQueued struct {
	group  packet.GroupID
	tags   []uint64
	oldest int // earliest enq slot among merged sources
}

// MRouter is a running data-path instance over a configured fabric.
type MRouter struct {
	cfg   Config
	fcfg  *fabric.Configuration
	n     int
	slot  int
	inQ   [][]Cell
	outQ  [][]mergedQueued
	stats Stats
	out   []Merged
}

// ErrIdleInput reports a cell arriving on a port no group uses.
var ErrIdleInput = errors.New("mrouter: cell on an input port no group uses")

// New builds an m-router data path over a fabric configuration.
func New(fcfg *fabric.Configuration, cfg Config) *MRouter {
	if cfg.InputDepth <= 0 {
		cfg.InputDepth = 16
	}
	if cfg.OutputDepth <= 0 {
		cfg.OutputDepth = 16
	}
	n := fcfg.N()
	return &MRouter{
		cfg:  cfg,
		fcfg: fcfg,
		n:    n,
		inQ:  make([][]Cell, n),
		outQ: make([][]mergedQueued, n),
	}
}

// Slot returns the current slot number.
func (m *MRouter) Slot() int { return m.slot }

// Stats returns a copy of the counters.
func (m *MRouter) Stats() Stats { return m.stats }

// Arrive offers a cell to an input buffer. A full buffer drops the cell
// (counted); an idle port is a caller error.
func (m *MRouter) Arrive(input int, tag uint64) error {
	if input < 0 || input >= m.n {
		return fmt.Errorf("mrouter: input %d out of range", input)
	}
	if _, _, ok := m.fcfg.Route(input); !ok {
		return ErrIdleInput
	}
	if len(m.inQ[input]) >= m.cfg.InputDepth {
		m.stats.DroppedInput++
		return nil
	}
	m.stats.Arrived++
	m.inQ[input] = append(m.inQ[input], Cell{Input: input, Tag: tag, enq: m.slot})
	return nil
}

// Step advances one cell slot and returns the cells transmitted this
// slot.
func (m *MRouter) Step() []Merged {
	// Phase 1+2: heads of input queues go through the fabric, merging
	// per group output.
	type agg struct {
		tags   []uint64
		oldest int
		output int
		group  packet.GroupID
	}
	merged := map[packet.GroupID]*agg{}
	for in := 0; in < m.n; in++ {
		if len(m.inQ[in]) == 0 {
			continue
		}
		head := m.inQ[in][0]
		m.inQ[in] = m.inQ[in][1:]
		out, gid, ok := m.fcfg.Route(in)
		if !ok {
			continue // unreachable: Arrive rejects idle ports
		}
		a := merged[gid]
		if a == nil {
			a = &agg{oldest: head.enq, output: out, group: gid}
			merged[gid] = a
		}
		a.tags = append(a.tags, head.Tag)
		if head.enq < a.oldest {
			a.oldest = head.enq
		}
	}
	gids := make([]packet.GroupID, 0, len(merged))
	for gid := range merged {
		gids = append(gids, gid)
	}
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
	for _, gid := range gids {
		a := merged[gid]
		m.stats.MergedCells++
		if len(m.outQ[a.output]) >= m.cfg.OutputDepth {
			m.stats.DroppedOutput++
			continue
		}
		m.outQ[a.output] = append(m.outQ[a.output], mergedQueued{
			group: a.group, tags: a.tags, oldest: a.oldest,
		})
	}
	// Phase 3: each output port transmits one cell.
	var sent []Merged
	txSlot := m.slot + m.fcfg.Stages() // pipeline latency
	for out := 0; out < m.n; out++ {
		if len(m.outQ[out]) == 0 {
			continue
		}
		q := m.outQ[out][0]
		m.outQ[out] = m.outQ[out][1:]
		m.stats.Transmitted++
		m.stats.latencySum += uint64(txSlot - q.oldest)
		sent = append(sent, Merged{Slot: txSlot, Output: out, Group: q.group, Tags: q.tags})
	}
	m.out = append(m.out, sent...)
	m.slot++
	return sent
}

// Run advances n slots and returns everything transmitted during them.
func (m *MRouter) Run(n int) []Merged {
	start := len(m.out)
	for i := 0; i < n; i++ {
		m.Step()
	}
	return m.out[start:]
}

// Backlog returns the cells still queued (input and output side).
func (m *MRouter) Backlog() (inputCells, outputCells int) {
	for _, q := range m.inQ {
		inputCells += len(q)
	}
	for _, q := range m.outQ {
		outputCells += len(q)
	}
	return
}
