package mrouter

import (
	"math/rand"
	"testing"
	"testing/quick"

	"scmp/internal/fabric"
	"scmp/internal/packet"
)

// twoGroupFabric: group 1 on inputs {0,1,2} -> output 4; group 2 on
// inputs {5,6} -> output 7.
func twoGroupFabric(t testing.TB) *fabric.Configuration {
	t.Helper()
	f, err := fabric.New(8)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := f.Configure(map[packet.GroupID]fabric.GroupConn{
		1: {Inputs: []int{0, 1, 2}, Output: 4},
		2: {Inputs: []int{5, 6}, Output: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestSimultaneousSourcesMergeInOneSlot(t *testing.T) {
	m := New(twoGroupFabric(t), Config{})
	for i, in := range []int{0, 1, 2} {
		if err := m.Arrive(in, uint64(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	sent := m.Step()
	if len(sent) != 1 {
		t.Fatalf("sent = %+v, want 1 merged cell", sent)
	}
	if sent[0].Output != 4 || sent[0].Group != 1 || len(sent[0].Tags) != 3 {
		t.Fatalf("merged = %+v", sent[0])
	}
	st := m.Stats()
	if st.Arrived != 3 || st.MergedCells != 1 || st.Transmitted != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGroupsDoNotBlockEachOther(t *testing.T) {
	m := New(twoGroupFabric(t), Config{})
	_ = m.Arrive(0, 1)
	_ = m.Arrive(5, 2)
	sent := m.Step()
	if len(sent) != 2 {
		t.Fatalf("sent = %+v, want both groups in the same slot", sent)
	}
}

func TestFIFOWithinInput(t *testing.T) {
	m := New(twoGroupFabric(t), Config{})
	_ = m.Arrive(0, 10)
	_ = m.Arrive(0, 20)
	first := m.Step()
	second := m.Step()
	if len(first) != 1 || first[0].Tags[0] != 10 {
		t.Fatalf("first = %+v", first)
	}
	if len(second) != 1 || second[0].Tags[0] != 20 {
		t.Fatalf("second = %+v", second)
	}
}

func TestInputBufferOverflowDrops(t *testing.T) {
	m := New(twoGroupFabric(t), Config{InputDepth: 2})
	for i := 0; i < 5; i++ {
		if err := m.Arrive(0, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.Arrived != 2 || st.DroppedInput != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOutputBufferOverflowDrops(t *testing.T) {
	// OutputDepth 1 and the drain rate (1/slot) equals the merge rate
	// (1/group/slot), so overflow needs two merged cells queued at the
	// same output in one... impossible with one group per output.
	// Instead: pre-fill by stepping without drain — use depth 1 and two
	// cells queued on different inputs of the same group across slots
	// while blocking the drain is not modelled; so verify no spurious
	// output drops under continuous single-group load.
	m := New(twoGroupFabric(t), Config{OutputDepth: 1})
	for slot := 0; slot < 10; slot++ {
		_ = m.Arrive(0, uint64(slot))
		m.Step()
	}
	m.Run(5)
	st := m.Stats()
	if st.DroppedOutput != 0 {
		t.Fatalf("unexpected output drops: %+v", st)
	}
	if st.Transmitted != 10 {
		t.Fatalf("transmitted = %d, want 10", st.Transmitted)
	}
}

func TestIdleInputRejected(t *testing.T) {
	m := New(twoGroupFabric(t), Config{})
	if err := m.Arrive(3, 1); err != ErrIdleInput {
		t.Fatalf("err = %v, want ErrIdleInput", err)
	}
	if err := m.Arrive(99, 1); err == nil {
		t.Fatal("out-of-range input accepted")
	}
}

func TestLatencyIncludesPipelineAndQueueing(t *testing.T) {
	fcfg := twoGroupFabric(t)
	m := New(fcfg, Config{})
	_ = m.Arrive(0, 1)
	sent := m.Step()
	if len(sent) != 1 {
		t.Fatal("no cell")
	}
	// Arrived at slot 0, transmitted in slot 0's phase 3 with pipeline
	// latency Stages().
	if sent[0].Slot != fcfg.Stages() {
		t.Fatalf("tx slot = %d, want %d", sent[0].Slot, fcfg.Stages())
	}
	if got := m.Stats().MeanLatency(); got != float64(fcfg.Stages()) {
		t.Fatalf("latency = %g, want %d", got, fcfg.Stages())
	}
	// A queued second cell waits one extra slot.
	m2 := New(fcfg, Config{})
	_ = m2.Arrive(0, 1)
	_ = m2.Arrive(0, 2)
	m2.Run(2)
	want := float64(fcfg.Stages()*2+1) / 2
	if got := m2.Stats().MeanLatency(); got != want {
		t.Fatalf("mean latency = %g, want %g", got, want)
	}
}

func TestBacklog(t *testing.T) {
	m := New(twoGroupFabric(t), Config{})
	_ = m.Arrive(0, 1)
	_ = m.Arrive(1, 2)
	in, out := m.Backlog()
	if in != 2 || out != 0 {
		t.Fatalf("backlog = %d/%d", in, out)
	}
	m.Step()
	in, out = m.Backlog()
	if in != 0 || out != 0 {
		t.Fatalf("backlog after step = %d/%d", in, out)
	}
}

// Property: cell conservation and group integrity under random load —
// every accepted cell is eventually transmitted (or died in an output
// drop), every transmitted tag appears exactly once, and merged cells
// only contain tags injected on their own group's inputs.
func TestPropertyConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fcfg := twoGroupFabric(t)
		m := New(fcfg, Config{InputDepth: 4, OutputDepth: 4})
		inputs := []int{0, 1, 2, 5, 6}
		tagGroup := map[uint64]packet.GroupID{} // accepted tags only
		var nextTag uint64
		for slot := 0; slot < 30; slot++ {
			for _, in := range inputs {
				if rng.Float64() < 0.6 {
					nextTag++
					before := m.Stats().Arrived
					_ = m.Arrive(in, nextTag)
					if m.Stats().Arrived > before {
						_, gid, _ := fcfg.Route(in)
						tagGroup[nextTag] = gid
					}
				}
			}
			m.Step()
		}
		for i := 0; i < 50; i++ { // drain
			m.Step()
		}
		if in, out := m.Backlog(); in != 0 || out != 0 {
			return false
		}
		seen := map[uint64]bool{}
		for _, tx := range m.out {
			for _, tag := range tx.Tags {
				if seen[tag] {
					return false // duplicated
				}
				seen[tag] = true
				want, accepted := tagGroup[tag]
				if !accepted || want != tx.Group {
					return false // phantom cell or cross-group mixing
				}
			}
		}
		if m.Stats().DroppedOutput == 0 && len(seen) != len(tagGroup) {
			return false // cells lost without an accounted drop
		}
		return len(seen) <= len(tagGroup)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDataPath(b *testing.B) {
	fcfg := twoGroupFabric(b)
	m := New(fcfg, Config{InputDepth: 64, OutputDepth: 64})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.Arrive(0, uint64(i))
		_ = m.Arrive(1, uint64(i))
		_ = m.Arrive(5, uint64(i))
		m.Step()
	}
}
