package netsim

import (
	"testing"

	"scmp/internal/des"
	"scmp/internal/packet"
	"scmp/internal/topology"
)

// ringGraph builds a 4-node ring so every link cut leaves an alternate
// route: 0-1-2-3-0, delay 2, cost 5 per link.
func ringGraph() *topology.Graph {
	g := topology.New(4)
	g.MustAddEdge(0, 1, 2, 5)
	g.MustAddEdge(1, 2, 2, 5)
	g.MustAddEdge(2, 3, 2, 5)
	g.MustAddEdge(3, 0, 2, 5)
	return g
}

// faultRecorder logs fault notifications in arrival order.
type faultRecorder struct{ events []FaultEvent }

func (r *faultRecorder) LinkDown(u, v topology.NodeID) {
	r.events = append(r.events, FaultEvent{Kind: LinkDown, U: u, V: v})
}
func (r *faultRecorder) LinkUp(u, v topology.NodeID) {
	r.events = append(r.events, FaultEvent{Kind: LinkUp, U: u, V: v})
}
func (r *faultRecorder) NodeDown(n topology.NodeID) {
	r.events = append(r.events, FaultEvent{Kind: NodeDown, U: n})
}
func (r *faultRecorder) NodeUp(n topology.NodeID) {
	r.events = append(r.events, FaultEvent{Kind: NodeUp, U: n})
}

func TestLinkDownDropsAndReroutes(t *testing.T) {
	p := &echoProto{}
	n := New(ringGraph(), p)
	f := n.InstallFaults(FaultPlan{})
	rec := &faultRecorder{}
	f.AddListener(rec)

	if n.Next.Hop(0, 1) != 1 {
		t.Fatalf("pre-fault next hop 0->1 = %d", n.Next.Hop(0, 1))
	}
	f.ScheduleLinkDown(10, 0, 1)
	n.RunUntil(11)

	if len(rec.events) != 1 || rec.events[0].Kind != LinkDown {
		t.Fatalf("listener events = %+v", rec.events)
	}
	// The unicast substrate routed around the cut: 0->1 now goes the
	// long way via 3.
	if n.Next.Hop(0, 1) != 3 {
		t.Fatalf("post-fault next hop 0->1 = %d, want 3", n.Next.Hop(0, 1))
	}
	// A direct SendLink on the dead link is refused and counted.
	n.SendLink(0, 1, &Packet{Kind: packet.Join, Size: 64})
	n.Run()
	if len(p.got) != 0 {
		t.Fatalf("delivered %d packets over a dead link", len(p.got))
	}
	if n.Metrics.DroppedControl() != 1 || n.Metrics.DroppedByKind(packet.Join) != 1 {
		t.Fatalf("control drops = %d", n.Metrics.DroppedControl())
	}
	// Restoring the link restores the direct route.
	f.ScheduleLinkUp(20, 0, 1)
	n.Run()
	if n.Next.Hop(0, 1) != 1 {
		t.Fatalf("post-repair next hop 0->1 = %d, want 1", n.Next.Hop(0, 1))
	}
	if len(rec.events) != 2 || rec.events[1].Kind != LinkUp {
		t.Fatalf("listener events = %+v", rec.events)
	}
}

func TestInFlightPacketLostToLinkCut(t *testing.T) {
	p := &echoProto{}
	n := New(lineGraph(2), p)
	n.InstallFaults(FaultPlan{Events: []FaultEvent{{At: 1, Kind: LinkDown, U: 0, V: 1}}})
	// Sent at t=0, arrives at t=2 — but the link dies at t=1 underneath
	// it, so the packet is lost at arrival time.
	n.SendLink(0, 1, &Packet{Kind: packet.Tree, Size: 64})
	n.Run()
	if len(p.got) != 0 {
		t.Fatal("packet survived a mid-flight link cut")
	}
	if n.Metrics.DroppedByKind(packet.Tree) != 1 {
		t.Fatalf("TREE drops = %d, want 1", n.Metrics.DroppedByKind(packet.Tree))
	}
}

func TestNodeCrashKillsAdjacentLinks(t *testing.T) {
	p := &echoProto{}
	n := New(lineGraph(3), p)
	f := n.InstallFaults(FaultPlan{})
	f.ScheduleNodeDown(5, 1)
	n.RunUntil(6)
	if !f.NodeIsDown(1) || !f.LinkIsDown(0, 1) || !f.LinkIsDown(1, 2) {
		t.Fatal("crashed node's links must read as down")
	}
	n.SendLink(0, 1, &Packet{Kind: packet.Data, Size: 100})
	n.Run()
	if len(p.got) != 0 {
		t.Fatal("delivered to a crashed node")
	}
	if n.Metrics.Dropped() != 1 {
		t.Fatalf("data drops = %d, want 1", n.Metrics.Dropped())
	}
}

func TestUnicastPartitionDropsInsteadOfPanicking(t *testing.T) {
	p := &echoProto{}
	n := New(lineGraph(3), p)
	n.InstallFaults(FaultPlan{Events: []FaultEvent{{At: 0, Kind: LinkDown, U: 1, V: 2}}})
	n.RunUntil(1)
	n.SendUnicast(0, &Packet{Kind: packet.Rejoin, Dst: 2, Size: 64})
	n.Run()
	if len(p.got) != 0 {
		t.Fatal("delivered across a partition")
	}
	if n.Metrics.DroppedByKind(packet.Rejoin) != 1 {
		t.Fatalf("REJOIN drops = %d, want 1", n.Metrics.DroppedByKind(packet.Rejoin))
	}
}

func TestNodeUpRereportsGroundTruthMembers(t *testing.T) {
	p := &echoProto{}
	n := New(lineGraph(3), p)
	f := n.InstallFaults(FaultPlan{})
	n.HostJoin(1, 9)
	n.HostJoin(1, 7)
	n.HostJoin(2, 7)
	p.joined = nil

	f.ScheduleNodeDown(5, 1)
	f.ScheduleNodeUp(10, 1)
	n.Run()
	// Exactly node 1's memberships are re-reported, in ascending group
	// order (7 then 9) — node 2 never crashed.
	if len(p.joined) != 2 || p.joined[0] != 1 || p.joined[1] != 1 {
		t.Fatalf("re-reported joins = %v, want [1 1]", p.joined)
	}
}

func TestPerClassLoss(t *testing.T) {
	// ControlLoss=1 kills every control packet but no data; DataLoss=1
	// the reverse.
	run := func(ctl, data float64) (*echoProto, *Network) {
		p := &echoProto{}
		n := New(lineGraph(2), p)
		n.InstallFaults(FaultPlan{ControlLoss: ctl, DataLoss: data, Seed: 1})
		n.SendLink(0, 1, &Packet{Kind: packet.Join, Size: 64})
		n.SendLink(0, 1, &Packet{Kind: packet.Data, Size: 100})
		n.Run()
		return p, n
	}
	p, n := run(1, 0)
	if len(p.got) != 1 || p.got[0].pkt.Kind != packet.Data {
		t.Fatalf("with ControlLoss=1: got %+v", p.got)
	}
	if n.Metrics.DroppedControl() != 1 || n.Metrics.Dropped() != 0 {
		t.Fatalf("drops ctl=%d data=%d", n.Metrics.DroppedControl(), n.Metrics.Dropped())
	}
	p, n = run(0, 1)
	if len(p.got) != 1 || p.got[0].pkt.Kind != packet.Join {
		t.Fatalf("with DataLoss=1: got %+v", p.got)
	}
	if n.Metrics.Dropped() != 1 || n.Metrics.DroppedControl() != 0 {
		t.Fatalf("drops ctl=%d data=%d", n.Metrics.DroppedControl(), n.Metrics.Dropped())
	}
}

func TestLossDeterministicAcrossRuns(t *testing.T) {
	run := func(seed int64) (delivered, dropped int64) {
		p := &echoProto{}
		n := New(lineGraph(2), p)
		n.InstallFaults(FaultPlan{ControlLoss: 0.4, Seed: seed})
		for i := 0; i < 200; i++ {
			n.SendLink(0, 1, &Packet{Kind: packet.Join, Size: 64})
		}
		n.Run()
		return int64(len(p.got)), n.Metrics.DroppedControl()
	}
	d1, x1 := run(42)
	d2, x2 := run(42)
	if d1 != d2 || x1 != x2 {
		t.Fatalf("same seed diverged: (%d,%d) vs (%d,%d)", d1, x1, d2, x2)
	}
	if x1 == 0 || d1 == 0 {
		t.Fatalf("40%% loss should both drop and deliver: delivered=%d dropped=%d", d1, x1)
	}
	d3, _ := run(43)
	if d3 == d1 {
		t.Log("different seeds delivered the same count (possible, just unlikely)")
	}
}

func TestLossWindowCloses(t *testing.T) {
	p := &echoProto{}
	n := New(lineGraph(2), p)
	n.InstallFaults(FaultPlan{ControlLoss: 1, LossUntil: 10, Seed: 1})
	n.Sched.At(20, func() {
		n.SendLink(0, 1, &Packet{Kind: packet.Join, Size: 64})
	})
	n.Run()
	// At t=20 the loss window has closed: the packet survives.
	if len(p.got) != 1 {
		t.Fatalf("post-window packet dropped (got %d deliveries)", len(p.got))
	}
}

func TestZeroLossPlanIsTransparent(t *testing.T) {
	// Installing an empty plan must not perturb behaviour at all.
	run := func(install bool) des.Time {
		p := &echoProto{}
		n := New(lineGraph(4), p)
		if install {
			n.InstallFaults(FaultPlan{Seed: 99})
		}
		n.SendUnicast(0, &Packet{Kind: packet.Join, Dst: 3, Size: 64})
		n.Run()
		if len(p.got) != 1 {
			t.Fatalf("got %d deliveries", len(p.got))
		}
		return n.Sched.Now()
	}
	if a, b := run(false), run(true); a != b {
		t.Fatalf("empty fault plan changed timing: %v vs %v", a, b)
	}
}

func TestInstallFaultsTwicePanics(t *testing.T) {
	n := New(lineGraph(2), &echoProto{})
	n.InstallFaults(FaultPlan{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.InstallFaults(FaultPlan{})
}

func TestFaultOnNonEdgePanics(t *testing.T) {
	n := New(lineGraph(3), &echoProto{})
	n.InstallFaults(FaultPlan{Events: []FaultEvent{{At: 0, Kind: LinkDown, U: 0, V: 2}}})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.Run()
}

func TestFaultKindString(t *testing.T) {
	if LinkDown.String() != "LINK-DOWN" || NodeUp.String() != "NODE-UP" {
		t.Fatal("fault kind names wrong")
	}
	if FaultKind(99).String() != "FaultKind(99)" {
		t.Fatal("unknown fault kind name wrong")
	}
}
