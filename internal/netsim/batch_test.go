package netsim

import (
	"slices"
	"testing"

	"scmp/internal/packet"
	"scmp/internal/topology"
)

// batchRec extends churnRec with the BatchLeaver extension, recording
// each batch it receives.
type batchRec struct {
	churnRec
	batches [][]topology.NodeID
}

func (p *batchRec) HostLeaveBatch(nodes []topology.NodeID, g packet.GroupID) {
	p.batches = append(p.batches, slices.Clone(nodes))
	for _, v := range nodes {
		p.log = append(p.log, churnEv{false, v, p.net.Now()})
	}
}

// Without the BatchLeaver extension, HostLeaveBatch must fall back to
// sequential HostLeave dispatch in batch order, after clearing the
// whole batch from ground truth.
func TestHostLeaveBatchFallback(t *testing.T) {
	p := &churnRec{}
	n := New(lineGraph(5), p)
	for _, v := range []topology.NodeID{1, 2, 3} {
		n.HostJoin(v, 7)
	}
	p.log = nil
	n.HostLeaveBatch([]topology.NodeID{3, 1}, 7)
	want := []churnEv{{false, 3, 0}, {false, 1, 0}}
	if !slices.Equal(p.log, want) {
		t.Fatalf("fallback dispatch %v, want sequential leaves %v", p.log, want)
	}
	if got := n.Members(7); !slices.Equal(got, []topology.NodeID{2}) {
		t.Fatalf("ground truth after batch: %v, want [2]", got)
	}
}

// With the extension, the protocol receives one call carrying the whole
// batch; a singleton batch stays on the plain HostLeave path.
func TestHostLeaveBatchDispatch(t *testing.T) {
	p := &batchRec{}
	n := New(lineGraph(5), p)
	for _, v := range []topology.NodeID{1, 2, 3} {
		n.HostJoin(v, 7)
	}
	n.HostLeaveBatch([]topology.NodeID{1, 3}, 7)
	if len(p.batches) != 1 || !slices.Equal(p.batches[0], []topology.NodeID{1, 3}) {
		t.Fatalf("batches = %v, want one batch [1 3]", p.batches)
	}
	n.HostLeaveBatch([]topology.NodeID{2}, 7)
	if len(p.batches) != 1 {
		t.Fatalf("singleton batch should dispatch as a plain HostLeave, got %v", p.batches)
	}
	if got := n.Members(7); len(got) != 0 {
		t.Fatalf("ground truth after batches: %v, want empty", got)
	}
}

// dispatchChurnTick must fire joins individually, in run order, and
// collapse maximal consecutive leave runs into single batches.
func TestDispatchChurnTickCoalescing(t *testing.T) {
	p := &batchRec{}
	n := New(lineGraph(8), p)
	for _, v := range []topology.NodeID{1, 2, 3, 4, 5} {
		n.HostJoin(v, 7)
	}
	p.log = nil
	run := []churnEvent{
		{member: 1, join: false},
		{member: 2, join: false},
		{member: 6, join: true},
		{member: 3, join: false},
		{member: 4, join: false},
		{member: 5, join: false},
	}
	n.dispatchChurnTick(run, 7)
	wantLog := []churnEv{
		{false, 1, 0}, {false, 2, 0},
		{true, 6, 0},
		{false, 3, 0}, {false, 4, 0}, {false, 5, 0},
	}
	if !slices.Equal(p.log, wantLog) {
		t.Fatalf("dispatch order %v, want %v", p.log, wantLog)
	}
	wantBatches := [][]topology.NodeID{{1, 2}, {3, 4, 5}}
	if len(p.batches) != 2 || !slices.Equal(p.batches[0], wantBatches[0]) || !slices.Equal(p.batches[1], wantBatches[1]) {
		t.Fatalf("batches %v, want %v", p.batches, wantBatches)
	}
	if got := n.Members(7); !slices.Equal(got, []topology.NodeID{6}) {
		t.Fatalf("ground truth after tick: %v, want [6]", got)
	}
}
