// Deterministic fault injection: the chaos layer the self-healing SCMP
// control plane is hardened against. A FaultPlan describes per-class
// packet loss and a schedule of link/node failures; Faults executes it
// on the network's own DES clock. Every loss decision is a positional
// draw — a stateless hash of (plan seed, directed link, per-link
// crossing index) via rng.Hash01 — rather than a pull from one shared
// sequential stream. A sequential stream would serialise all consumers
// (each draw depends on how many draws happened before it anywhere in
// the run), which the partitioned parallel simulator cannot provide;
// positional draws give every link crossing the same verdict no matter
// how execution is partitioned, so an identically-seeded run replays
// the exact same faults — packet for packet — regardless of host,
// parallelism, partition count or wall clock.
package netsim

import (
	"fmt"
	"sort"

	"scmp/internal/des"
	"scmp/internal/packet"
	"scmp/internal/rng"
	"scmp/internal/topology"
)

// FaultKind enumerates scheduled fault events.
type FaultKind int

const (
	LinkDown FaultKind = iota
	LinkUp
	NodeDown
	NodeUp
)

var faultKindNames = map[FaultKind]string{
	LinkDown: "LINK-DOWN", LinkUp: "LINK-UP",
	NodeDown: "NODE-DOWN", NodeUp: "NODE-UP",
}

func (k FaultKind) String() string {
	if s, ok := faultKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// FaultEvent is one scheduled topology fault. For link events U and V
// are the endpoints; for node events U is the router and V is ignored.
type FaultEvent struct {
	At   des.Time
	Kind FaultKind
	U, V topology.NodeID
}

// FaultPlan parameterises a fault-injection run. The zero value injects
// nothing (but still installs the machinery, so events can be scheduled
// later via the Schedule* methods).
type FaultPlan struct {
	// ControlLoss and DataLoss are per-link-crossing drop probabilities
	// for control-class and data-class packets respectively. Zero
	// disables loss for that class without consuming any randomness, so
	// a lossless faulty run stays byte-identical to a fault-free one.
	ControlLoss float64
	DataLoss    float64
	// LossUntil, when positive, confines random loss to simulated times
	// strictly before it — the "last fault" boundary recovery is
	// measured from. Zero means loss applies for the whole run.
	LossUntil des.Time
	// Seed keys the positional loss draws (rng.Hash01). Plans with equal
	// seeds lose the same crossings of the same links.
	Seed int64
	// Events are scheduled at install time. Same-time events apply in
	// slice order (the DES breaks time ties by insertion sequence).
	Events []FaultEvent
}

// FaultListener is the optional interface through which components
// observe topology faults. The unicast substrate (Network.Next) is
// always recomputed before listeners run, so a listener reacting to
// LinkDown can immediately route around the dead link. The Protocol is
// notified first when it implements the interface; extra listeners
// (IGMP subnets, experiment probes) follow in registration order.
type FaultListener interface {
	LinkDown(u, v topology.NodeID)
	LinkUp(u, v topology.NodeID)
	NodeDown(n topology.NodeID)
	NodeUp(n topology.NodeID)
}

// linkKey is an undirected link identity for the down-link set.
type linkKey struct{ a, b topology.NodeID }

func mkLinkKey(u, v topology.NodeID) linkKey {
	if u > v {
		u, v = v, u
	}
	return linkKey{u, v}
}

// Faults injects a FaultPlan into a Network: random per-class packet
// loss plus scheduled link and node failures, all on the DES clock.
type Faults struct {
	net       *Network
	plan      FaultPlan
	downLinks map[linkKey]bool
	downNodes map[topology.NodeID]bool
	listeners []FaultListener

	// Per-directed-link crossing counters for the positional loss
	// draws: the fast path indexes by CSR arc id (each arc's admits run
	// only in the sending node's partition, so the array is written
	// race-free under parallel windows); the reference path keeps the
	// historical map store. Both count crossings of the same directed
	// link, so the draws coincide and the fast-vs-ref differential gate
	// holds.
	lossN []uint64
	lossM map[dirLink]uint64
}

// InstallFaults attaches a fault plan to the network and schedules its
// events. At most one plan per network; installing twice panics.
func (n *Network) InstallFaults(plan FaultPlan) *Faults {
	if n.faults != nil {
		panic("netsim: faults installed twice")
	}
	f := &Faults{
		net:       n,
		plan:      plan,
		downLinks: make(map[linkKey]bool),
		downNodes: make(map[topology.NodeID]bool),
	}
	if n.refMode {
		f.lossM = make(map[dirLink]uint64)
	} else {
		// Preallocated up front: lazy growth inside a parallel window
		// would race.
		f.lossN = make([]uint64, n.csr.NumArcs())
	}
	n.faults = f
	for _, ev := range plan.Events {
		ev := ev
		n.Sched.At(ev.At, func() { f.apply(ev) })
	}
	return f
}

// Faults returns the installed fault layer, nil when none.
func (n *Network) Faults() *Faults { return n.faults }

// AddListener registers an extra fault observer (the Protocol is
// auto-notified when it implements FaultListener; don't register it).
func (f *Faults) AddListener(l FaultListener) { f.listeners = append(f.listeners, l) }

// ScheduleLinkDown cuts the link {u,v} at simulated time at.
func (f *Faults) ScheduleLinkDown(at des.Time, u, v topology.NodeID) {
	f.net.Sched.At(at, func() { f.apply(FaultEvent{Kind: LinkDown, U: u, V: v}) })
}

// ScheduleLinkUp restores the link {u,v} at simulated time at.
func (f *Faults) ScheduleLinkUp(at des.Time, u, v topology.NodeID) {
	f.net.Sched.At(at, func() { f.apply(FaultEvent{Kind: LinkUp, U: u, V: v}) })
}

// ScheduleNodeDown crashes router n at simulated time at.
func (f *Faults) ScheduleNodeDown(at des.Time, n topology.NodeID) {
	f.net.Sched.At(at, func() { f.apply(FaultEvent{Kind: NodeDown, U: n}) })
}

// ScheduleNodeUp restarts router n at simulated time at. The restarted
// router has lost all protocol state; ground-truth member hosts on its
// subnet re-report their memberships (the IGMP query cycle), driving a
// fresh protocol join.
func (f *Faults) ScheduleNodeUp(at des.Time, n topology.NodeID) {
	f.net.Sched.At(at, func() { f.apply(FaultEvent{Kind: NodeUp, U: n}) })
}

// LinkIsDown reports whether {u,v} is unusable: scheduled down, or
// touching a crashed node.
func (f *Faults) LinkIsDown(u, v topology.NodeID) bool {
	return f.downLinks[mkLinkKey(u, v)] || f.downNodes[u] || f.downNodes[v]
}

// NodeIsDown reports whether router n is crashed.
func (f *Faults) NodeIsDown(n topology.NodeID) bool { return f.downNodes[n] }

// Avoid returns the routing mask the current fault state implies, for
// protocols recomputing their own path tables (topology.ShortestAvoid).
// The returned func is a live view: it tracks fault events applied
// after this call. Eager recomputes (netsim's own RecomputeRoutes) want
// exactly that; lazily materialised tables must use AvoidSnapshot
// instead.
func (f *Faults) Avoid() topology.AvoidFunc {
	return func(u, v topology.NodeID) bool { return f.LinkIsDown(u, v) }
}

// AvoidSnapshot returns the routing mask frozen at the current fault
// state. Rows of a lazy path table built over this snapshot reproduce
// exactly what an eager rebuild at this instant would have computed,
// no matter how many further fault events fire before a row is first
// consulted. Returns nil when nothing is down (no mask needed).
func (f *Faults) AvoidSnapshot() topology.AvoidFunc {
	if len(f.downLinks) == 0 && len(f.downNodes) == 0 {
		return nil
	}
	links := make(map[linkKey]bool, len(f.downLinks))
	for k, v := range f.downLinks {
		links[k] = v
	}
	nodes := make(map[topology.NodeID]bool, len(f.downNodes))
	for k, v := range f.downNodes {
		nodes[k] = v
	}
	return func(u, v topology.NodeID) bool {
		return links[mkLinkKey(u, v)] || nodes[u] || nodes[v]
	}
}

// lossRate returns the plan's drop probability for kind's class.
func (f *Faults) lossRate(kind packet.Kind) float64 {
	if packet.ClassOf(kind) == packet.ClassProtocol {
		return f.plan.ControlLoss
	}
	return f.plan.DataLoss
}

// lossPairKey packs a directed link into the positional draw key.
func lossPairKey(from, to topology.NodeID) uint64 {
	return uint64(uint32(from))<<32 | uint64(uint32(to))
}

// loseArc draws the loss decision for the n-th admitted crossing of the
// directed link behind CSR arc a, offered at send time now (the sending
// shard's clock). The draw is positional — hash(seed, link, n) — so it
// depends only on the link and how many draws that link has seen, never
// on draw order elsewhere in the run. The counter stays untouched when
// the class's rate is zero or the loss window has closed, so such runs
// replay identically to configurations without loss.
func (f *Faults) loseArc(a int32, from, to topology.NodeID, kind packet.Kind, now des.Time) bool {
	rate := f.lossRate(kind)
	if rate <= 0 {
		return false
	}
	if f.plan.LossUntil > 0 && now >= f.plan.LossUntil {
		return false
	}
	nth := f.lossN[a]
	f.lossN[a] = nth + 1
	return rng.Hash01(f.plan.Seed, lossPairKey(from, to), nth) < rate
}

// loseRef is loseArc for the reference path: identical draws keyed by
// the same (link, crossing-index) pairs, counted in the historical map
// store against the reference scheduler's clock.
func (f *Faults) loseRef(from, to topology.NodeID, kind packet.Kind) bool {
	rate := f.lossRate(kind)
	if rate <= 0 {
		return false
	}
	if f.plan.LossUntil > 0 && f.net.Sched.Now() >= f.plan.LossUntil {
		return false
	}
	k := dirLink{from, to}
	nth := f.lossM[k]
	f.lossM[k] = nth + 1
	return rng.Hash01(f.plan.Seed, lossPairKey(from, to), nth) < rate
}

// apply executes one fault event: update the down sets, reconverge the
// unicast substrate, then notify the protocol and listeners. NodeUp
// additionally re-reports the router's ground-truth memberships.
func (f *Faults) apply(ev FaultEvent) {
	switch ev.Kind {
	case LinkDown:
		if _, ok := f.net.G.Edge(ev.U, ev.V); !ok {
			panic(fmt.Sprintf("netsim: fault on non-edge {%d,%d}", ev.U, ev.V))
		}
		f.downLinks[mkLinkKey(ev.U, ev.V)] = true
	case LinkUp:
		delete(f.downLinks, mkLinkKey(ev.U, ev.V))
	case NodeDown:
		f.downNodes[ev.U] = true
	case NodeUp:
		delete(f.downNodes, ev.U)
	}
	f.net.RecomputeRoutes()
	f.notify(ev)
	if ev.Kind == NodeUp {
		f.rereport(ev.U)
	}
}

// notify fans the event to the protocol (when it listens) and the
// registered listeners, in deterministic order.
func (f *Faults) notify(ev FaultEvent) {
	all := make([]FaultListener, 0, len(f.listeners)+1)
	if pl, ok := f.net.Proto.(FaultListener); ok {
		all = append(all, pl)
	}
	all = append(all, f.listeners...)
	for _, l := range all {
		switch ev.Kind {
		case LinkDown:
			l.LinkDown(ev.U, ev.V)
		case LinkUp:
			l.LinkUp(ev.U, ev.V)
		case NodeDown:
			l.NodeDown(ev.U)
		case NodeUp:
			l.NodeUp(ev.U)
		}
	}
}

// rereport replays the restarted router's ground-truth memberships into
// the protocol — the modelled IGMP query round after a DR reboot: the
// member hosts never left the subnet, so the first query re-learns them
// and the DR re-joins their groups.
func (f *Faults) rereport(node topology.NodeID) {
	gids := make([]packet.GroupID, 0, len(f.net.members))
	for g := range f.net.members {
		gids = append(gids, g)
	}
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
	for _, g := range gids {
		if f.net.members[g].has(node) {
			f.net.Proto.HostJoin(node, g)
		}
	}
}
