// Package netsim is the packet-level network simulator the protocols run
// on — the offline stand-in for NS-2. It combines a topology graph, the
// discrete-event scheduler, per-link packet transmission with delay, a
// unicast shortest-delay routing substrate (the "link state unicast
// routing protocol" every domain is assumed to run), metrics accounting
// per the paper's definitions, and ground-truth delivery tracking so
// tests can assert exactly-once delivery to every group member.
//
// The steady-state forwarding path is allocation-free: in-flight packet
// copies come from a free-list pool and are handed back after delivery,
// link crossings are scheduled through the DES typed-sink path (no
// closure per hop), per-link state (busy horizons, load counters) is
// indexed by dense CSR arc id, and membership/delivery ground truth
// lives in bitsets. The historical closure-based delivery path is
// preserved behind NewRef for the differential-equivalence gate; both
// paths perform the same operations in the same order, so runs are
// byte-identical (DESIGN.md §10).
package netsim

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"scmp/internal/des"
	"scmp/internal/metrics"
	"scmp/internal/packet"
	"scmp/internal/topology"
)

// Packet is one simulated packet. Protocols never mutate a received
// packet; forwarding goes through Network.SendLink, which copies it.
// A delivered packet (and its Payload) must not be retained past
// HandlePacket: the simulator recycles the copy once the handler
// returns.
type Packet struct {
	Kind    packet.Kind
	Group   packet.GroupID
	Src     topology.NodeID // originating router
	From    topology.NodeID // previous hop, set on delivery
	Dst     topology.NodeID // unicast destination, when meaningful
	Seq     uint64          // data-packet identity for delivery tracking
	Version uint64          // SCMP tree-distribution version
	Payload []byte
	Size    int
	Created des.Time // when the original data packet entered the network
}

// ParallelSafe is the opt-in interface for partitioned parallel
// execution (Network.Partition, DESIGN.md §12). A protocol returning
// true certifies that, as currently configured, handling a packet at a
// router mutates only state confined to that router's partition — no
// cross-router shared structures touched from the packet path, no
// timers, no mid-flight global reads that feed printed metrics.
// Protocols that do not implement the interface (or return false) run
// serially under any requested partition count; Partition reports the
// fallback and changes nothing.
type ParallelSafe interface {
	ParallelWindowSafe() bool
}

// Protocol is a multicast routing protocol under test. One Protocol
// instance manages per-router state for every router in the domain
// (routers are identified by NodeID in each call).
type Protocol interface {
	// Name identifies the protocol in reports ("SCMP", "DVMRP", ...).
	Name() string
	// Attach wires the protocol to a network. Called exactly once.
	Attach(n *Network)
	// HandlePacket processes a packet arriving at a router.
	HandlePacket(node topology.NodeID, pkt *Packet)
	// HostJoin tells the designated router that its subnet gained the
	// first member host of group g (IGMP report edge).
	HostJoin(node topology.NodeID, g packet.GroupID)
	// HostLeave tells the designated router that its subnet lost the
	// last member host of group g (IGMP leave edge).
	HostLeave(node topology.NodeID, g packet.GroupID)
	// SendData injects one data packet for group g at source router src.
	// The source may or may not be a group member.
	SendData(src topology.NodeID, g packet.GroupID, size int, seq uint64)
}

// nodeSet is a fixed-capacity bitset over router ids.
type nodeSet []uint64

func newNodeSet(n int) nodeSet { return make(nodeSet, (n+63)/64) }

func (s nodeSet) has(v topology.NodeID) bool { return s[v>>6]&(1<<(uint(v)&63)) != 0 }
func (s nodeSet) set(v topology.NodeID)      { s[v>>6] |= 1 << (uint(v) & 63) }
func (s nodeSet) clear(v topology.NodeID)    { s[v>>6] &^= 1 << (uint(v) & 63) }

// count returns the number of set bits.
func (s nodeSet) count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}

// appendIDs appends the set members in ascending order.
func (s nodeSet) appendIDs(out []topology.NodeID) []topology.NodeID {
	for wi, w := range s {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, topology.NodeID(wi<<6+b))
			w &= w - 1
		}
	}
	return out
}

// delivery tracks who should and did receive one data packet: the
// member snapshot at send time, who has received it at least once, and
// who received it more than once. Three bitsets in one backing slice —
// the per-data-packet bookkeeping is one allocation, and the per-hop
// DeliverLocal path is two word operations.
type delivery struct {
	exp, once, dup nodeSet
}

func newDelivery(n int) *delivery {
	w := (n + 63) / 64
	backing := make(nodeSet, 3*w)
	return &delivery{exp: backing[:w], once: backing[w : 2*w], dup: backing[2*w:]}
}

// Network is one simulated domain.
type Network struct {
	G       *topology.Graph
	Sched   *des.Scheduler
	Metrics *metrics.Collector
	Next    *topology.NextHopTable // unicast next hops by shortest delay, flat n*n
	Proto   Protocol

	seq        uint64
	members    map[packet.GroupID]nodeSet
	deliveries map[uint64]*delivery

	// Trace, when set, observes every link crossing (for debugging and
	// the examples' live narration). The *Packet argument is only valid
	// for the duration of the call.
	Trace func(from, to topology.NodeID, pkt *Packet)

	// Bandwidth, when positive, gives every link a finite capacity in
	// bytes per second: packets serialise per link direction, so a
	// packet's total latency is queueing + transmission (size/Bandwidth)
	// + propagation — the paper's three-component link delay. Zero (the
	// default) models infinite capacity: propagation only.
	Bandwidth float64

	// Fast-path state: the CSR arc table (directed edge ids), each arc's
	// undirected link index for dense metrics, and per-arc busy horizons
	// (allocated on first finite-Bandwidth send; preallocated when
	// partitioned — arcs are owned by the sender's partition, so the
	// array is written race-free but must not be lazily created inside a
	// window).
	csr    *topology.CSR
	arcUID []int32
	busy   []des.Time

	// Execution shards. Serial runs have exactly one, aliasing Sched and
	// Metrics (zero behavioral difference from the pre-shard layout);
	// Partition replaces them with one shard per topology partition plus
	// the des.Partitioned coordinator. part maps node -> partition and is
	// nil when serial.
	shards []*shard
	part   []int32
	pd     *des.Partitioned

	// refMode routes SendLink/SendUnicast through the preserved
	// closure-per-hop delivery path (NewRef); busyUntil is its historical
	// map-keyed busy-horizon store.
	refMode   bool
	busyUntil map[dirLink]des.Time

	faults *Faults
	churn  []*Churn
}

// shard is the per-partition execution state: the partition's
// scheduler, its metrics collector, and its free list of in-flight
// packet copies. Every hot-path operation executing at node v goes
// through v's shard, so parallel windows touch no shared mutable state.
// Packets may retire into a different shard's pool than they came from
// (cross-partition hops); the pools are plain free lists, so that only
// shifts capacity around.
type shard struct {
	id    int32
	sched *des.Scheduler
	col   *metrics.Collector
	pool  []*Packet
}

// dirLink is a directed link (queueing is per transmit side).
type dirLink struct{ from, to topology.NodeID }

// Sink operation codes for typed delivery events.
const (
	opDeliver uint8 = iota // one link hop: deliver to the protocol at b
	opUnicast              // unicast relay: forward again unless b == Dst
	opSelf                 // self-delivery of a locally injected packet
)

// New builds a network over g running proto. It precomputes the unicast
// next-hop tables, registers the link table with the metrics collector,
// and attaches the protocol.
func New(g *topology.Graph, proto Protocol) *Network {
	return build(g, proto, false)
}

// NewRef builds a network identical to New's except that packets flow
// through the reference scheduler and the historical closure-based
// delivery path. Test-only: the differential gate runs workloads on
// both and asserts byte-identical results.
func NewRef(g *topology.Graph, proto Protocol) *Network {
	return build(g, proto, true)
}

func build(g *topology.Graph, proto Protocol, ref bool) *Network {
	n := &Network{
		G:          g,
		Metrics:    &metrics.Collector{},
		Next:       topology.NextHop(g),
		Proto:      proto,
		members:    make(map[packet.GroupID]nodeSet),
		deliveries: make(map[uint64]*delivery),
		refMode:    ref,
	}
	if ref {
		n.Sched = des.NewRef()
		n.busyUntil = make(map[dirLink]des.Time)
	} else {
		n.Sched = des.New()
		n.Sched.SetSink(n)
		n.csr = g.CSR()
		// Assign every directed arc its undirected link index, in CSR
		// scan order, and register the table for dense load counting.
		uidOf := make(map[metrics.LinkID]int32, g.M())
		ids := make([]metrics.LinkID, 0, g.M())
		n.arcUID = make([]int32, n.csr.NumArcs())
		for u := 0; u < g.N(); u++ {
			lo, hi := n.csr.Row(topology.NodeID(u))
			for i := lo; i < hi; i++ {
				id := metrics.MkLinkID(topology.NodeID(u), n.csr.ArcDst(i))
				idx, ok := uidOf[id]
				if !ok {
					idx = int32(len(ids))
					ids = append(ids, id)
					uidOf[id] = idx
				}
				n.arcUID[i] = idx
			}
		}
		n.Metrics.UseDenseLinks(ids)
	}
	// The serial execution shard aliases the network-level scheduler and
	// collector; Partition replaces it with per-partition shards.
	n.shards = []*shard{{id: 0, sched: n.Sched, col: n.Metrics}}
	proto.Attach(n)
	return n
}

// shardOf returns the execution shard owning node v: the only shard in
// serial runs, v's partition's shard when partitioned.
func (n *Network) shardOf(v topology.NodeID) *shard {
	if n.part == nil {
		return n.shards[0]
	}
	return n.shards[n.part[v]]
}

// Partition switches the network to partitioned parallel execution over
// k topology partitions (DESIGN.md §12): a deterministic delay-aware
// graph cut, one scheduler + metrics shard per partition, and the
// conservative windowed coordinator with the cut's minimum
// cross-partition delay as lookahead. Sched stays the global scheduler
// for harness and control events (joins, sends, faults), which execute
// alone at window barriers.
//
// It returns false — leaving the network serial — when the protocol
// does not certify ParallelSafe for its current configuration, or when
// the cut degenerates. Call it once, after New and before installing
// faults or scheduling work; partitioning twice or partitioning a
// reference network panics.
func (n *Network) Partition(k int, seed int64) bool {
	if k <= 1 {
		return false // serial request: valid on any network, including ref
	}
	if n.refMode {
		panic("netsim: cannot partition the reference network")
	}
	if n.pd != nil {
		panic("netsim: network partitioned twice")
	}
	if n.faults != nil {
		panic("netsim: Partition must run before InstallFaults")
	}
	if len(n.churn) > 0 {
		// Churn floods the global scheduler with barrier events that
		// mutate shared membership state mid-run; the windowed drive
		// would serialise on them anyway, so fall back to serial.
		return false
	}
	ps, ok := n.Proto.(ParallelSafe)
	if !ok || !ps.ParallelWindowSafe() {
		return false
	}
	part := topology.Partition(n.G, k, seed)
	kEff := 0
	for _, p := range part {
		if int(p) >= kEff {
			kEff = int(p) + 1
		}
	}
	if kEff < 2 {
		return false
	}
	la := des.Time(topology.MinCrossDelay(n.G, part))
	if !(la > 0) { // a zero-delay cross link leaves no lookahead window
		return false
	}
	n.part = part
	n.shards = make([]*shard, kEff)
	parts := make([]*des.Scheduler, kEff)
	for i := range n.shards {
		s := des.New()
		s.SetSink(n)
		n.shards[i] = &shard{id: int32(i), sched: s, col: n.Metrics.Shard()}
		parts[i] = s
	}
	// Busy horizons are written by the owning sender's partition; the
	// array must exist before windows run concurrently (a lazy first-use
	// allocation inside a window would race).
	if n.busy == nil {
		n.busy = make([]des.Time, n.csr.NumArcs())
	}
	n.pd = des.NewPartitioned(n.Sched, parts, la)
	return true
}

// Partitions reports the number of execution partitions (1 = serial).
func (n *Network) Partitions() int {
	if n.pd == nil {
		return 1
	}
	return len(n.shards)
}

// EventsFired returns the total events executed across the global
// scheduler and every partition shard.
func (n *Network) EventsFired() uint64 {
	total := n.Sched.Fired()
	if n.pd != nil {
		for _, sh := range n.shards {
			total += sh.sched.Fired()
		}
	}
	return total
}

// IsRef reports whether this network runs the reference delivery path.
func (n *Network) IsRef() bool { return n.refMode }

// getPacket takes a packet from the shard's free list (or allocates).
func (sh *shard) getPacket() *Packet {
	if k := len(sh.pool); k > 0 {
		p := sh.pool[k-1]
		sh.pool = sh.pool[:k-1]
		return p
	}
	// Pool miss: a one-time warm-up allocation, amortized to zero at
	// steady state (PR 5 measured 0 allocs/op once the pool is primed).
	return new(Packet) //scmplint:ignore hotalloc
}

// putPacket hands a delivered in-flight copy back to the shard's free
// list. The payload reference is dropped (payload backing arrays are
// shared read-only with other in-flight copies and must not be reused).
func (sh *shard) putPacket(p *Packet) {
	p.Payload = nil
	sh.pool = append(sh.pool, p)
}

// arc returns the CSR arc index from -> to, or -1 when not adjacent.
// Same linear neighbour scan (and scan order) as Graph.Edge, over flat
// arrays.
func (n *Network) arc(from, to topology.NodeID) int32 {
	lo, hi := n.csr.Row(from)
	for i := lo; i < hi; i++ {
		if n.csr.ArcDst(i) == to {
			return i
		}
	}
	return -1
}

// arcLatency returns when a packet offered now (on the sending shard's
// clock) on arc a is delivered, accounting for queueing and
// transmission when a finite Bandwidth is set, and updates the arc's
// busy horizon. Identical arithmetic, in the same order, as the
// reference path's linkLatency. Arc a's horizon is written only by the
// shard owning the sender, so partitioned windows touch disjoint
// entries.
func (n *Network) arcLatency(sh *shard, a int32, size int) des.Time {
	now := sh.sched.Now()
	if n.Bandwidth <= 0 {
		return now + des.Time(n.csr.ArcDelay(a))
	}
	if n.busy == nil {
		// Lazy one-time init of the busy-horizon array, not per-packet
		// (preallocated instead when partitioned).
		n.busy = make([]des.Time, n.csr.NumArcs()) //scmplint:ignore hotalloc
	}
	start := now
	if b := n.busy[a]; b > start {
		start = b
	}
	tx := des.Time(float64(size) / n.Bandwidth)
	n.busy[a] = start + tx
	return start + tx + des.Time(n.csr.ArcDelay(a))
}

// linkLatency is the reference path's busy-horizon bookkeeping, kept on
// the historical map store.
func (n *Network) linkLatency(from, to topology.NodeID, propagation float64, size int) des.Time {
	now := n.Sched.Now()
	if n.Bandwidth <= 0 {
		return now + des.Time(propagation)
	}
	key := dirLink{from, to}
	start := now
	if b := n.busyUntil[key]; b > start {
		start = b
	}
	tx := des.Time(float64(size) / n.Bandwidth)
	n.busyUntil[key] = start + tx
	return start + tx + des.Time(propagation)
}

// Now returns the current simulated time.
func (n *Network) Now() des.Time { return n.Sched.Now() }

// RecomputeRoutes rebuilds the unicast next-hop tables against the
// current topology, masking out faulted links and crashed routers. The
// fault layer calls it before notifying listeners of any change; it is
// also safe to call directly.
func (n *Network) RecomputeRoutes() {
	if n.faults == nil {
		n.Next = topology.NextHop(n.G)
		return
	}
	n.Next = topology.NextHopAvoid(n.G, n.faults.Avoid())
}

// admit applies the fault layer to one link crossing offered at send
// time: a down link (or crashed endpoint) refuses the packet outright,
// and random loss may claim it mid-flight. Refused or lost packets are
// counted per kind on the sending shard; only admitted && !lost packets
// were transmitted successfully (lost ones still occupied the link).
// The delivery callback must still re-check the fault state at arrival
// time — a fault can strike while the packet is in flight.
func (n *Network) admit(sh *shard, a int32, from, to topology.NodeID, kind packet.Kind) (admitted, lost bool) {
	if n.faults == nil {
		return true, false
	}
	if n.faults.LinkIsDown(from, to) {
		sh.col.OnDrop(kind)
		return false, false
	}
	return true, n.faults.loseArc(a, from, to, kind, sh.sched.Now())
}

// arrived reports whether a packet scheduled on from->to survives to be
// handled at to, counting the drop on the receiving shard otherwise.
func (n *Network) arrived(sh *shard, from, to topology.NodeID, kind packet.Kind, lost bool) bool {
	if n.faults == nil {
		return true
	}
	if lost || n.faults.LinkIsDown(from, to) {
		sh.col.OnDrop(kind)
		return false
	}
	return true
}

// admitRef / arrivedRef are the reference path's fault hooks: same
// decisions as admit/arrived against the network-level collector and
// the reference loss counters.
func (n *Network) admitRef(from, to topology.NodeID, kind packet.Kind) (admitted, lost bool) {
	if n.faults == nil {
		return true, false
	}
	if n.faults.LinkIsDown(from, to) {
		n.Metrics.OnDrop(kind)
		return false, false
	}
	return true, n.faults.loseRef(from, to, kind)
}

func (n *Network) arrivedRef(from, to topology.NodeID, kind packet.Kind, lost bool) bool {
	if n.faults == nil {
		return true
	}
	if lost || n.faults.LinkIsDown(from, to) {
		n.Metrics.OnDrop(kind)
		return false
	}
	return true
}

// SendLink transmits a copy of pkt from one router to an adjacent one:
// it accounts the link crossing and schedules HandlePacket at the
// far end after the link delay.
//
//scmplint:hotpath
func (n *Network) SendLink(from, to topology.NodeID, pkt *Packet) {
	if n.refMode {
		// Reference delivery path: allocating by design, not hot.
		n.sendLinkRef(from, to, pkt) //scmplint:ignore hotalloc
		return
	}
	a := n.arc(from, to)
	if a < 0 {
		panic(fmt.Sprintf("netsim: SendLink %d->%d not adjacent", from, to))
	}
	sh := n.shardOf(from)
	admitted, lost := n.admit(sh, a, from, to, pkt.Kind)
	if !admitted {
		return
	}
	cp := sh.getPacket()
	*cp = *pkt // Payload shared read-only
	cp.From = from
	sh.col.OnLinkDense(n.arcUID[a], cp.Kind, n.csr.ArcCost(a), cp.Size)
	if n.Trace != nil {
		n.Trace(from, to, cp)
	}
	at := n.arcLatency(sh, a, cp.Size)
	if dp := n.shardOf(to); dp != sh {
		// Cross-partition hop: buffered and injected at the next window
		// boundary in canonical merge order. The link delay is at least
		// the coordinator's lookahead by construction of the cut.
		n.pd.Post(sh.id, dp.id, at, opDeliver, int32(from), int32(to), cp, lost)
		return
	}
	sh.sched.AtSink(at, opDeliver, int32(from), int32(to), cp, lost)
}

// SinkEvent dispatches a typed delivery event; it implements des.Sink
// and is invoked only by the scheduler.
//
//scmplint:hotpath
func (n *Network) SinkEvent(op uint8, a, b int32, p any, flag bool) {
	pkt := p.(*Packet)
	from, to := topology.NodeID(a), topology.NodeID(b)
	// Every delivery op executes at node b, so the event was dispatched
	// by (and this call runs on) b's shard.
	sh := n.shardOf(to)
	switch op {
	case opDeliver:
		if n.arrived(sh, from, to, pkt.Kind, flag) {
			n.Proto.HandlePacket(to, pkt)
		}
		sh.putPacket(pkt)
	case opUnicast:
		if !n.arrived(sh, from, to, pkt.Kind, flag) {
			sh.putPacket(pkt)
			return
		}
		if to == pkt.Dst {
			n.Proto.HandlePacket(to, pkt)
			sh.putPacket(pkt)
			return
		}
		n.unicastStep(to, pkt)
	case opSelf:
		n.Proto.HandlePacket(to, pkt)
		sh.putPacket(pkt)
	}
}

// SendUnicast routes a copy of pkt hop-by-hop from src to pkt.Dst along
// the unicast substrate. Intermediate routers forward below the
// multicast protocol (the crossing is accounted but HandlePacket fires
// only at the destination). Delivering to self is immediate.
//
//scmplint:hotpath
func (n *Network) SendUnicast(src topology.NodeID, pkt *Packet) {
	if n.refMode {
		// Reference delivery path: allocating by design, not hot.
		n.sendUnicastRef(src, pkt) //scmplint:ignore hotalloc
		return
	}
	sh := n.shardOf(src)
	cp := sh.getPacket()
	*cp = *pkt
	if src == cp.Dst {
		cp.From = src
		sh.sched.AtSink(sh.sched.Now(), opSelf, int32(src), int32(src), cp, false)
		return
	}
	n.unicastStep(src, cp)
}

// unicastStep forwards an owned in-flight copy one hop toward its
// destination, reusing the same pooled packet across all hops.
func (n *Network) unicastStep(at topology.NodeID, pkt *Packet) {
	sh := n.shardOf(at)
	nh := n.Next.Hop(at, pkt.Dst)
	if nh == -1 {
		// With faults installed a partition is a legitimate runtime
		// state: the packet dies here and the drop is accounted.
		// Without faults an unreachable destination is a harness bug.
		if n.faults != nil {
			sh.col.OnDrop(pkt.Kind)
			sh.putPacket(pkt)
			return
		}
		panic(fmt.Sprintf("netsim: no unicast route %d->%d", at, pkt.Dst))
	}
	a := n.arc(at, nh)
	admitted, lost := n.admit(sh, a, at, nh, pkt.Kind)
	if !admitted {
		sh.putPacket(pkt)
		return
	}
	pkt.From = at
	sh.col.OnLinkDense(n.arcUID[a], pkt.Kind, n.csr.ArcCost(a), pkt.Size)
	if n.Trace != nil {
		n.Trace(at, nh, pkt)
	}
	t := n.arcLatency(sh, a, pkt.Size)
	if dp := n.shardOf(nh); dp != sh {
		n.pd.Post(sh.id, dp.id, t, opUnicast, int32(at), int32(nh), pkt, lost)
		return
	}
	sh.sched.AtSink(t, opUnicast, int32(at), int32(nh), pkt, lost)
}

// --- reference delivery path (historical, test-only) -------------------
//
// The pre-pooling implementation, verbatim: a heap-allocated packet
// copy and a capturing closure per hop. The differential gate runs
// every experiment on both paths and compares output bytes; both
// perform the same Edge lookup, admit draw, metrics account, Trace
// call and schedule, in the same order, so the event and RNG streams
// coincide exactly.

func (n *Network) sendLinkRef(from, to topology.NodeID, pkt *Packet) {
	l, ok := n.G.Edge(from, to)
	if !ok {
		panic(fmt.Sprintf("netsim: SendLink %d->%d not adjacent", from, to))
	}
	admitted, lost := n.admitRef(from, to, pkt.Kind)
	if !admitted {
		return
	}
	cp := *pkt
	cp.From = from
	cp.Payload = pkt.Payload // shared read-only
	n.Metrics.OnLink(from, to, cp.Kind, l.Cost, cp.Size)
	if n.Trace != nil {
		n.Trace(from, to, &cp)
	}
	n.Sched.At(n.linkLatency(from, to, l.Delay, cp.Size), func() {
		if !n.arrivedRef(from, to, cp.Kind, lost) {
			return
		}
		n.Proto.HandlePacket(to, &cp)
	})
}

func (n *Network) sendUnicastRef(src topology.NodeID, pkt *Packet) {
	dst := pkt.Dst
	if src == dst {
		cp := *pkt
		cp.From = src
		n.Sched.After(0, func() { n.Proto.HandlePacket(dst, &cp) })
		return
	}
	n.unicastStepRef(src, pkt)
}

func (n *Network) unicastStepRef(at topology.NodeID, pkt *Packet) {
	nh := n.Next.Hop(at, pkt.Dst)
	if nh == -1 {
		if n.faults != nil {
			n.Metrics.OnDrop(pkt.Kind)
			return
		}
		panic(fmt.Sprintf("netsim: no unicast route %d->%d", at, pkt.Dst))
	}
	admitted, lost := n.admitRef(at, nh, pkt.Kind)
	if !admitted {
		return
	}
	l, _ := n.G.Edge(at, nh)
	cp := *pkt
	cp.From = at
	n.Metrics.OnLink(at, nh, cp.Kind, l.Cost, cp.Size)
	if n.Trace != nil {
		n.Trace(at, nh, &cp)
	}
	n.Sched.At(n.linkLatency(at, nh, l.Delay, cp.Size), func() {
		if !n.arrivedRef(at, nh, cp.Kind, lost) {
			return
		}
		if nh == cp.Dst {
			n.Proto.HandlePacket(nh, &cp)
		} else {
			n.unicastStepRef(nh, &cp)
		}
	})
}

// UnicastPath returns the unicast route src -> dst as a node sequence.
func (n *Network) UnicastPath(src, dst topology.NodeID) []topology.NodeID {
	path := []topology.NodeID{src}
	for at := src; at != dst; {
		nh := n.Next.Hop(at, dst)
		if nh == -1 {
			return nil
		}
		path = append(path, nh)
		at = nh
	}
	return path
}

// HostJoin registers a member-host edge at router node (ground truth)
// and informs the protocol.
func (n *Network) HostJoin(node topology.NodeID, g packet.GroupID) {
	if n.members[g] == nil {
		n.members[g] = newNodeSet(n.G.N())
	}
	n.members[g].set(node)
	n.Proto.HostJoin(node, g)
}

// HostLeave removes the member-host edge at router node and informs the
// protocol.
func (n *Network) HostLeave(node topology.NodeID, g packet.GroupID) {
	if m := n.members[g]; m != nil {
		m.clear(node)
	}
	n.Proto.HostLeave(node, g)
}

// BatchLeaver is an optional Protocol extension: a protocol that can
// retire several same-instant member-host leave edges in one pass (for
// SCMP's m-router that means one shared tree prune instead of per-leave
// prune cascades) implements it to receive coalesced leave batches from
// HostLeaveBatch. The batch must be equivalent to dispatching the
// leaves sequentially — within one simulated instant the order is
// unobservable, only the resulting membership set matters.
type BatchLeaver interface {
	HostLeaveBatch(nodes []topology.NodeID, g packet.GroupID)
}

// HostLeaveBatch removes several member-host edges at one simulated
// instant. Ground truth is cleared for the whole batch first, then the
// protocol gets one BatchLeaver call when it implements the extension
// and a sequential HostLeave dispatch when it does not. The nodes slice
// is only valid for the duration of the call.
func (n *Network) HostLeaveBatch(nodes []topology.NodeID, g packet.GroupID) {
	if len(nodes) == 1 {
		n.HostLeave(nodes[0], g)
		return
	}
	if m := n.members[g]; m != nil {
		for _, v := range nodes {
			m.clear(v)
		}
	}
	if bl, ok := n.Proto.(BatchLeaver); ok {
		bl.HostLeaveBatch(nodes, g)
		return
	}
	for _, v := range nodes {
		n.Proto.HostLeave(v, g)
	}
}

// Members returns the ground-truth member routers of g, sorted.
func (n *Network) Members(g packet.GroupID) []topology.NodeID {
	m := n.members[g]
	if m == nil {
		return nil
	}
	return m.appendIDs(make([]topology.NodeID, 0, m.count()))
}

// IsMember reports ground-truth membership.
func (n *Network) IsMember(node topology.NodeID, g packet.GroupID) bool {
	m := n.members[g]
	return m != nil && m.has(node)
}

// SendData injects one data packet at src for group g, snapshotting the
// current member set as the expected receivers. It returns the packet's
// sequence number for delivery checking.
func (n *Network) SendData(src topology.NodeID, g packet.GroupID, size int) uint64 {
	n.seq++
	seq := n.seq
	d := newDelivery(n.G.N())
	copy(d.exp, n.members[g])
	d.exp.clear(src) // a sending member does not deliver to itself over the network
	n.deliveries[seq] = d
	n.Proto.SendData(src, g, size, seq)
	return seq
}

// DeliverLocal is called by protocols when a data packet reaches a
// router with local member hosts. It feeds the delay metric and the
// delivery record.
func (n *Network) DeliverLocal(node topology.NodeID, pkt *Packet) {
	sh := n.shardOf(node)
	sh.col.OnDeliver(float64(sh.sched.Now() - pkt.Created))
	d := n.deliveries[pkt.Seq]
	if d == nil {
		return
	}
	if n.pd == nil {
		if d.once.has(node) {
			d.dup.set(node)
		} else {
			d.once.set(node)
		}
		return
	}
	// Partitioned: each node's bit is set only by its own partition, but
	// nodes of different partitions can share a bitset word — the
	// updates must be atomic read-modify-writes. (CAS loops rather than
	// atomic Or: the module targets Go 1.22, before atomic.OrUint64.)
	if d.once.atomicSetHad(node) {
		d.dup.atomicSetHad(node)
	}
}

// atomicSetHad sets v's bit with a CAS loop and reports whether it was
// already set. Safe against concurrent setters of other bits in the
// same word.
func (s nodeSet) atomicSetHad(v topology.NodeID) bool {
	w := &s[v>>6]
	mask := uint64(1) << (uint(v) & 63)
	for {
		old := atomic.LoadUint64(w)
		if old&mask != 0 {
			return true
		}
		if atomic.CompareAndSwapUint64(w, old, old|mask) {
			return false
		}
	}
}

// DropData is called by protocols when they discard a data packet at a
// router; the drop is counted on that router's shard.
func (n *Network) DropData(node topology.NodeID) {
	n.shardOf(node).col.OnDrop(packet.Data)
}

// CheckDelivery compares a data packet's deliveries against the member
// snapshot taken at send time. It returns the members that never
// received it and the routers that received it more than once (or were
// not expected to deliver at all), each in ascending order.
func (n *Network) CheckDelivery(seq uint64) (missing, anomalous []topology.NodeID) {
	d := n.deliveries[seq]
	if d == nil {
		return nil, nil
	}
	for wi := range d.exp {
		if miss := d.exp[wi] &^ d.once[wi]; miss != 0 {
			missing = nodeSet{miss}.appendWord(missing, wi)
		}
		// Anomalous: delivered more than once, or delivered without
		// being expected.
		if anom := d.dup[wi] | (d.once[wi] &^ d.exp[wi]); anom != 0 {
			anomalous = nodeSet{anom}.appendWord(anomalous, wi)
		}
	}
	return missing, anomalous
}

// appendWord appends the ids of the set bits of word s[0], offset as
// word index wi, in ascending order.
func (s nodeSet) appendWord(out []topology.NodeID, wi int) []topology.NodeID {
	w := s[0]
	for w != 0 {
		b := bits.TrailingZeros64(w)
		out = append(out, topology.NodeID(wi<<6+b))
		w &= w - 1
	}
	return out
}

// Run drains all pending events (the network quiesces). Partitioned
// networks drive the window coordinator and then fold every shard's
// metrics into Metrics — in ascending partition order, so float sums
// accumulate in a fixed order — leaving Metrics current whenever the
// caller can observe it.
func (n *Network) Run() {
	if n.pd != nil {
		n.pd.Run()
		n.drainShards()
		return
	}
	n.Sched.Run()
}

// RunUntil advances simulated time to the deadline.
func (n *Network) RunUntil(t des.Time) {
	if n.pd != nil {
		n.pd.RunUntil(t)
		n.drainShards()
		return
	}
	n.Sched.RunUntil(t)
}

func (n *Network) drainShards() {
	for _, sh := range n.shards {
		n.Metrics.Drain(sh.col)
	}
}
