// Package netsim is the packet-level network simulator the protocols run
// on — the offline stand-in for NS-2. It combines a topology graph, the
// discrete-event scheduler, per-link packet transmission with delay, a
// unicast shortest-delay routing substrate (the "link state unicast
// routing protocol" every domain is assumed to run), metrics accounting
// per the paper's definitions, and ground-truth delivery tracking so
// tests can assert exactly-once delivery to every group member.
package netsim

import (
	"fmt"
	"sort"

	"scmp/internal/des"
	"scmp/internal/metrics"
	"scmp/internal/packet"
	"scmp/internal/topology"
)

// Packet is one simulated packet. Protocols never mutate a received
// packet; forwarding goes through Network.SendLink, which copies it.
type Packet struct {
	Kind    packet.Kind
	Group   packet.GroupID
	Src     topology.NodeID // originating router
	From    topology.NodeID // previous hop, set on delivery
	Dst     topology.NodeID // unicast destination, when meaningful
	Seq     uint64          // data-packet identity for delivery tracking
	Version uint64          // SCMP tree-distribution version
	Payload []byte
	Size    int
	Created des.Time // when the original data packet entered the network
}

// Protocol is a multicast routing protocol under test. One Protocol
// instance manages per-router state for every router in the domain
// (routers are identified by NodeID in each call).
type Protocol interface {
	// Name identifies the protocol in reports ("SCMP", "DVMRP", ...).
	Name() string
	// Attach wires the protocol to a network. Called exactly once.
	Attach(n *Network)
	// HandlePacket processes a packet arriving at a router.
	HandlePacket(node topology.NodeID, pkt *Packet)
	// HostJoin tells the designated router that its subnet gained the
	// first member host of group g (IGMP report edge).
	HostJoin(node topology.NodeID, g packet.GroupID)
	// HostLeave tells the designated router that its subnet lost the
	// last member host of group g (IGMP leave edge).
	HostLeave(node topology.NodeID, g packet.GroupID)
	// SendData injects one data packet for group g at source router src.
	// The source may or may not be a group member.
	SendData(src topology.NodeID, g packet.GroupID, size int, seq uint64)
}

// delivery tracks who should and did receive one data packet.
type delivery struct {
	expected map[topology.NodeID]bool
	received map[topology.NodeID]int
}

// Network is one simulated domain.
type Network struct {
	G       *topology.Graph
	Sched   *des.Scheduler
	Metrics *metrics.Collector
	Next    *topology.NextHopTable // unicast next hops by shortest delay, flat n*n
	Proto   Protocol

	seq        uint64
	members    map[packet.GroupID]map[topology.NodeID]bool
	deliveries map[uint64]*delivery

	// Trace, when set, observes every link crossing (for debugging and
	// the examples' live narration).
	Trace func(from, to topology.NodeID, pkt *Packet)

	// Bandwidth, when positive, gives every link a finite capacity in
	// bytes per second: packets serialise per link direction, so a
	// packet's total latency is queueing + transmission (size/Bandwidth)
	// + propagation — the paper's three-component link delay. Zero (the
	// default) models infinite capacity: propagation only.
	Bandwidth float64
	busyUntil map[dirLink]des.Time

	faults *Faults
}

// dirLink is a directed link (queueing is per transmit side).
type dirLink struct{ from, to topology.NodeID }

// New builds a network over g running proto. It precomputes the unicast
// next-hop tables and attaches the protocol.
func New(g *topology.Graph, proto Protocol) *Network {
	n := &Network{
		G:          g,
		Sched:      des.New(),
		Metrics:    &metrics.Collector{},
		Next:       topology.NextHop(g),
		Proto:      proto,
		members:    make(map[packet.GroupID]map[topology.NodeID]bool),
		deliveries: make(map[uint64]*delivery),
		busyUntil:  make(map[dirLink]des.Time),
	}
	proto.Attach(n)
	return n
}

// linkLatency returns when a packet offered now on from->to is
// delivered, accounting for queueing and transmission when a finite
// Bandwidth is set, and updates the link's busy horizon.
func (n *Network) linkLatency(from, to topology.NodeID, propagation float64, size int) des.Time {
	now := n.Sched.Now()
	if n.Bandwidth <= 0 {
		return now + des.Time(propagation)
	}
	key := dirLink{from, to}
	start := now
	if b := n.busyUntil[key]; b > start {
		start = b
	}
	tx := des.Time(float64(size) / n.Bandwidth)
	n.busyUntil[key] = start + tx
	return start + tx + des.Time(propagation)
}

// Now returns the current simulated time.
func (n *Network) Now() des.Time { return n.Sched.Now() }

// RecomputeRoutes rebuilds the unicast next-hop tables against the
// current topology, masking out faulted links and crashed routers. The
// fault layer calls it before notifying listeners of any change; it is
// also safe to call directly.
func (n *Network) RecomputeRoutes() {
	if n.faults == nil {
		n.Next = topology.NextHop(n.G)
		return
	}
	n.Next = topology.NextHopAvoid(n.G, n.faults.Avoid())
}

// admit applies the fault layer to one link crossing offered at send
// time: a down link (or crashed endpoint) refuses the packet outright,
// and random loss may claim it mid-flight. Refused or lost packets are
// counted per kind; only admitted && !lost packets were transmitted
// successfully (lost ones still occupied the link). The delivery
// callback must still re-check the fault state at arrival time —
// a fault can strike while the packet is in flight.
func (n *Network) admit(from, to topology.NodeID, kind packet.Kind) (admitted, lost bool) {
	if n.faults == nil {
		return true, false
	}
	if n.faults.LinkIsDown(from, to) {
		n.Metrics.OnDrop(kind)
		return false, false
	}
	return true, n.faults.lose(kind)
}

// arrived reports whether a packet scheduled on from->to survives to be
// handled at to, counting the drop otherwise.
func (n *Network) arrived(from, to topology.NodeID, kind packet.Kind, lost bool) bool {
	if n.faults == nil {
		return true
	}
	if lost || n.faults.LinkIsDown(from, to) {
		n.Metrics.OnDrop(kind)
		return false
	}
	return true
}

// SendLink transmits a copy of pkt from one router to an adjacent one:
// it accounts the link crossing and schedules HandlePacket at the
// far end after the link delay.
func (n *Network) SendLink(from, to topology.NodeID, pkt *Packet) {
	l, ok := n.G.Edge(from, to)
	if !ok {
		panic(fmt.Sprintf("netsim: SendLink %d->%d not adjacent", from, to))
	}
	admitted, lost := n.admit(from, to, pkt.Kind)
	if !admitted {
		return
	}
	cp := *pkt
	cp.From = from
	cp.Payload = pkt.Payload // shared read-only
	n.Metrics.OnLink(from, to, cp.Kind, l.Cost, cp.Size)
	if n.Trace != nil {
		n.Trace(from, to, &cp)
	}
	n.Sched.At(n.linkLatency(from, to, l.Delay, cp.Size), func() {
		if !n.arrived(from, to, cp.Kind, lost) {
			return
		}
		n.Proto.HandlePacket(to, &cp)
	})
}

// SendUnicast routes a copy of pkt hop-by-hop from src to pkt.Dst along
// the unicast substrate. Intermediate routers forward below the
// multicast protocol (the crossing is accounted but HandlePacket fires
// only at the destination). Delivering to self is immediate.
func (n *Network) SendUnicast(src topology.NodeID, pkt *Packet) {
	dst := pkt.Dst
	if src == dst {
		cp := *pkt
		cp.From = src
		n.Sched.After(0, func() { n.Proto.HandlePacket(dst, &cp) })
		return
	}
	n.unicastStep(src, pkt)
}

func (n *Network) unicastStep(at topology.NodeID, pkt *Packet) {
	nh := n.Next.Hop(at, pkt.Dst)
	if nh == -1 {
		// With faults installed a partition is a legitimate runtime
		// state: the packet dies here and the drop is accounted.
		// Without faults an unreachable destination is a harness bug.
		if n.faults != nil {
			n.Metrics.OnDrop(pkt.Kind)
			return
		}
		panic(fmt.Sprintf("netsim: no unicast route %d->%d", at, pkt.Dst))
	}
	admitted, lost := n.admit(at, nh, pkt.Kind)
	if !admitted {
		return
	}
	l, _ := n.G.Edge(at, nh)
	cp := *pkt
	cp.From = at
	n.Metrics.OnLink(at, nh, cp.Kind, l.Cost, cp.Size)
	if n.Trace != nil {
		n.Trace(at, nh, &cp)
	}
	n.Sched.At(n.linkLatency(at, nh, l.Delay, cp.Size), func() {
		if !n.arrived(at, nh, cp.Kind, lost) {
			return
		}
		if nh == cp.Dst {
			n.Proto.HandlePacket(nh, &cp)
		} else {
			n.unicastStep(nh, &cp)
		}
	})
}

// UnicastPath returns the unicast route src -> dst as a node sequence.
func (n *Network) UnicastPath(src, dst topology.NodeID) []topology.NodeID {
	path := []topology.NodeID{src}
	for at := src; at != dst; {
		nh := n.Next.Hop(at, dst)
		if nh == -1 {
			return nil
		}
		path = append(path, nh)
		at = nh
	}
	return path
}

// HostJoin registers a member-host edge at router node (ground truth)
// and informs the protocol.
func (n *Network) HostJoin(node topology.NodeID, g packet.GroupID) {
	if n.members[g] == nil {
		n.members[g] = make(map[topology.NodeID]bool)
	}
	n.members[g][node] = true
	n.Proto.HostJoin(node, g)
}

// HostLeave removes the member-host edge at router node and informs the
// protocol.
func (n *Network) HostLeave(node topology.NodeID, g packet.GroupID) {
	delete(n.members[g], node)
	n.Proto.HostLeave(node, g)
}

// Members returns the ground-truth member routers of g, sorted.
func (n *Network) Members(g packet.GroupID) []topology.NodeID {
	out := make([]topology.NodeID, 0, len(n.members[g]))
	for v := range n.members[g] {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// IsMember reports ground-truth membership.
func (n *Network) IsMember(node topology.NodeID, g packet.GroupID) bool {
	return n.members[g][node]
}

// SendData injects one data packet at src for group g, snapshotting the
// current member set as the expected receivers. It returns the packet's
// sequence number for delivery checking.
func (n *Network) SendData(src topology.NodeID, g packet.GroupID, size int) uint64 {
	n.seq++
	seq := n.seq
	exp := make(map[topology.NodeID]bool, len(n.members[g]))
	for v := range n.members[g] {
		if v != src { // a sending member does not deliver to itself over the network
			exp[v] = true
		}
	}
	n.deliveries[seq] = &delivery{expected: exp, received: make(map[topology.NodeID]int)}
	n.Proto.SendData(src, g, size, seq)
	return seq
}

// DeliverLocal is called by protocols when a data packet reaches a
// router with local member hosts. It feeds the delay metric and the
// delivery record.
func (n *Network) DeliverLocal(node topology.NodeID, pkt *Packet) {
	n.Metrics.OnDeliver(float64(n.Sched.Now() - pkt.Created))
	if d := n.deliveries[pkt.Seq]; d != nil {
		d.received[node]++
	}
}

// DropData is called by protocols when they discard a data packet.
func (n *Network) DropData() { n.Metrics.OnDrop(packet.Data) }

// CheckDelivery compares a data packet's deliveries against the member
// snapshot taken at send time. It returns the members that never
// received it and the routers that received it more than once (or were
// not expected to deliver at all).
func (n *Network) CheckDelivery(seq uint64) (missing, anomalous []topology.NodeID) {
	d := n.deliveries[seq]
	if d == nil {
		return nil, nil
	}
	for v := range d.expected {
		if d.received[v] == 0 {
			missing = append(missing, v)
		}
	}
	for v, c := range d.received {
		if c > 1 || !d.expected[v] {
			anomalous = append(anomalous, v)
		}
	}
	sort.Slice(missing, func(i, j int) bool { return missing[i] < missing[j] })
	sort.Slice(anomalous, func(i, j int) bool { return anomalous[i] < anomalous[j] })
	return missing, anomalous
}

// Run drains all pending events (the network quiesces).
func (n *Network) Run() { n.Sched.Run() }

// RunUntil advances simulated time to the deadline.
func (n *Network) RunUntil(t des.Time) { n.Sched.RunUntil(t) }
