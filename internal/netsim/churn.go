// Churn driver: a seeded membership workload generator. Each member in
// a ChurnPlan alternates between on-tree and off-tree episodes whose
// lengths are drawn from a Poisson (exponential gaps) or heavy-tailed
// (Pareto gaps) renewal process, producing sustained join/leave/rejoin
// pressure on the control plane — thousands of membership events per
// simulated second at the rates the churn experiment sweeps. Event
// times are pre-generated from one rng.Rand per member (split off the
// plan seed in member order), so a (plan, seed) pair always yields the
// byte-identical event schedule regardless of how the run is driven.
//
// Churn composes with the fault layer: InstallChurn and InstallFaults
// can both be applied to one network, so membership pressure runs under
// control-plane loss and link cuts. It does NOT compose with the
// partitioned parallel drive — membership events are global-scheduler
// barrier events that mutate shared protocol state, far outside the
// steady-state window workload the ParallelSafe certification covers —
// so a churned network always falls back to the serial drive
// (Partition returns false; see DESIGN.md §13).
package netsim

import (
	"fmt"
	"math"
	"sort"

	"scmp/internal/des"
	"scmp/internal/packet"
	"scmp/internal/rng"
	"scmp/internal/topology"
)

// ChurnDist selects the inter-event gap distribution of a churn plan.
type ChurnDist int

const (
	// ChurnPoisson draws exponential gaps: memoryless arrivals, the
	// classic Poisson membership process.
	ChurnPoisson ChurnDist = iota
	// ChurnPareto draws Pareto gaps: heavy-tailed episodes where a few
	// members stay put for a long time while most flap rapidly.
	ChurnPareto
)

func (d ChurnDist) String() string {
	switch d {
	case ChurnPoisson:
		return "poisson"
	case ChurnPareto:
		return "pareto"
	default:
		return fmt.Sprintf("ChurnDist(%d)", int(d))
	}
}

// DefaultChurnAlpha is the Pareto shape used when ChurnPlan.Alpha is
// zero. Must exceed 1 or the gap distribution has no finite mean.
const DefaultChurnAlpha = 1.5

// ChurnPlan describes one churn workload: which members flap, how
// fast, with which gap distribution, and over which window.
type ChurnPlan struct {
	Group    packet.GroupID
	Members  []topology.NodeID // the flapping population, in draw order
	Rate     float64           // aggregate membership events per simulated second
	Dist     ChurnDist
	Alpha    float64 // Pareto shape; 0 = DefaultChurnAlpha; ignored for Poisson
	Start    float64 // first event no earlier than this time
	Duration float64 // events generated in [Start, Start+Duration)
	Seed     int64
}

// Churn is one installed churn plan with its pre-generated event
// counts.
type Churn struct {
	plan    ChurnPlan
	events  int
	joins   int
	rejoins int
	leaves  int
}

// Plan returns the installed plan.
func (c *Churn) Plan() ChurnPlan { return c.plan }

// Events returns the total membership events generated.
func (c *Churn) Events() int { return c.events }

// Joins returns the first-time join events generated.
func (c *Churn) Joins() int { return c.joins }

// Rejoins returns the rejoin (join after a leave) events generated.
func (c *Churn) Rejoins() int { return c.rejoins }

// Leaves returns the leave events generated.
func (c *Churn) Leaves() int { return c.leaves }

// InstallChurn pre-generates the plan's membership schedule and queues
// every event on the global scheduler. It must run before the network
// runs and must not follow Partition (churned networks are serial-only;
// install churn first and Partition will decline). The returned Churn
// reports the generated event mix.
func (n *Network) InstallChurn(plan ChurnPlan) *Churn {
	if n.pd != nil {
		panic("netsim: InstallChurn after Partition")
	}
	if len(plan.Members) == 0 {
		panic("netsim: churn plan has no members")
	}
	if !(plan.Rate > 0) {
		panic("netsim: churn plan rate must be positive")
	}
	if !(plan.Duration > 0) {
		panic("netsim: churn plan duration must be positive")
	}
	alpha := plan.Alpha
	if alpha == 0 {
		alpha = DefaultChurnAlpha
	}
	if plan.Dist == ChurnPareto && !(alpha > 1) {
		panic("netsim: Pareto churn needs alpha > 1 (finite mean)")
	}
	c := &Churn{plan: plan}
	// Aggregate Rate spread over the population: each member's renewal
	// process has mean gap population/Rate, so the expected event total
	// is Rate * Duration regardless of member count.
	mean := float64(len(plan.Members)) / plan.Rate
	// Pareto scale chosen so the gap mean matches the Poisson case:
	// E[gap] = xm*alpha/(alpha-1) = mean.
	xm := mean * (alpha - 1) / alpha
	end := plan.Start + plan.Duration
	parent := rng.New(plan.Seed)
	var evs []churnEvent
	for _, m := range plan.Members {
		r := rng.Split(parent)
		on, joined := false, false
		for t := plan.Start; ; {
			var gap float64
			if plan.Dist == ChurnPareto {
				gap = xm / math.Pow(1-r.Float64(), 1/alpha)
			} else {
				gap = r.ExpFloat64() * mean
			}
			t += gap
			if t >= end {
				break
			}
			on = !on
			c.events++
			if on {
				if joined {
					c.rejoins++
				} else {
					c.joins++
					joined = true
				}
			} else {
				c.leaves++
			}
			evs = append(evs, churnEvent{t: t, member: m, join: on})
		}
	}
	// Events are generated member-major; the stable sort orders them by
	// time while keeping member-major order for exact-time ties, which
	// is precisely the order the scheduler's insertion-sequence
	// tie-break used to run them when each event was queued directly.
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].t < evs[j].t })
	g := plan.Group
	for i := 0; i < len(evs); {
		j := i + 1
		for j < len(evs) && evs[j].t == evs[i].t { //scmplint:ignore floatcmp — intentionally exact: only bit-identical timestamps may share a scheduler instant; near-ties must stay distinct events in time order
			j++
		}
		if j == i+1 {
			ev := evs[i]
			if ev.join {
				n.Sched.At(des.Time(ev.t), func() { n.HostJoin(ev.member, g) })
			} else {
				n.Sched.At(des.Time(ev.t), func() { n.HostLeave(ev.member, g) })
			}
		} else {
			// Same-instant events collapse into one scheduler entry;
			// consecutive leaves inside it dispatch as one batch (one
			// shared prune pass for protocols that support it).
			run := evs[i:j]
			n.Sched.At(des.Time(run[0].t), func() { n.dispatchChurnTick(run, g) })
		}
		i = j
	}
	n.churn = append(n.churn, c)
	return c
}

// churnEvent is one pre-generated membership flip: member joins (or
// leaves) the group at simulated time t.
type churnEvent struct {
	t      float64
	member topology.NodeID
	join   bool
}

// dispatchChurnTick fires a run of same-instant churn events in order:
// joins individually, maximal consecutive leave runs as one batched
// leave. Within one simulated instant the leave order is unobservable
// to the protocol — only the resulting membership set matters — which
// is what makes the batch equivalent to the sequential dispatch.
func (n *Network) dispatchChurnTick(run []churnEvent, g packet.GroupID) {
	batch := make([]topology.NodeID, 0, len(run))
	for i := 0; i < len(run); {
		if run[i].join {
			n.HostJoin(run[i].member, g)
			i++
			continue
		}
		batch = batch[:0]
		for i < len(run) && !run[i].join {
			batch = append(batch, run[i].member)
			i++
		}
		n.HostLeaveBatch(batch, g)
	}
}

// --- Overload-protection metric taps ----------------------------------
//
// The protocol reports overload events through the network so they land
// in the correct metrics shard (keyed by the router where the event
// happened), mirroring DropData.

// NoteShed records a JOIN refused by admission control at router node.
func (n *Network) NoteShed(node topology.NodeID) { n.shardOf(node).col.OnShed() }

// NotePark records a request at router node exhausting its retry
// budget and parking.
func (n *Network) NotePark(node topology.NodeID) { n.shardOf(node).col.OnPark() }

// NoteParkRecover records a parked request at router node recovering.
func (n *Network) NoteParkRecover(node topology.NodeID) { n.shardOf(node).col.OnParkRecover() }

// NoteRefreshSkip records a suppressed soft-state refresh at router
// node (the m-router).
func (n *Network) NoteRefreshSkip(node topology.NodeID) { n.shardOf(node).col.OnRefreshSkip() }

// NoteRestructure records a tree restructuring computed at router node
// (the m-router).
func (n *Network) NoteRestructure(node topology.NodeID) { n.shardOf(node).col.OnRestructure() }
