package netsim

import (
	"testing"

	"scmp/internal/des"
	"scmp/internal/packet"
	"scmp/internal/topology"
)

// echoProto records every packet it sees and can deliver data locally at
// configured member nodes.
type echoProto struct {
	net     *Network
	got     []recorded
	members map[topology.NodeID]bool
	onData  func(node topology.NodeID, pkt *Packet)
	joined  []topology.NodeID
	left    []topology.NodeID
}

type recorded struct {
	node topology.NodeID
	pkt  Packet
}

func (e *echoProto) Name() string      { return "echo" }
func (e *echoProto) Attach(n *Network) { e.net = n }
func (e *echoProto) HandlePacket(node topology.NodeID, pkt *Packet) {
	e.got = append(e.got, recorded{node, *pkt})
	if pkt.Kind == packet.Data && e.onData != nil {
		e.onData(node, pkt)
	}
}
func (e *echoProto) HostJoin(node topology.NodeID, g packet.GroupID) {
	e.joined = append(e.joined, node)
}
func (e *echoProto) HostLeave(node topology.NodeID, g packet.GroupID) { e.left = append(e.left, node) }
func (e *echoProto) SendData(src topology.NodeID, g packet.GroupID, size int, seq uint64) {
	for _, l := range e.net.G.Neighbors(src) {
		e.net.SendLink(src, l.To, &Packet{Kind: packet.Data, Group: g, Src: src, Seq: seq, Size: size, Created: e.net.Now()})
	}
}

func lineGraph(n int) *topology.Graph {
	g := topology.New(n)
	for i := 0; i < n-1; i++ {
		g.MustAddEdge(topology.NodeID(i), topology.NodeID(i+1), 2, 5)
	}
	return g
}

func TestSendLinkDelayAndAccounting(t *testing.T) {
	p := &echoProto{}
	n := New(lineGraph(3), p)
	n.SendLink(0, 1, &Packet{Kind: packet.Join, Size: 64})
	n.Run()
	if len(p.got) != 1 {
		t.Fatalf("packets = %d", len(p.got))
	}
	if p.got[0].node != 1 || p.got[0].pkt.From != 0 {
		t.Fatalf("delivered at %d from %d", p.got[0].node, p.got[0].pkt.From)
	}
	if n.Sched.Now() != 2 {
		t.Fatalf("clock = %v, want link delay 2", n.Sched.Now())
	}
	if n.Metrics.ProtocolOverhead() != 5 {
		t.Fatalf("protocol overhead = %g, want link cost 5", n.Metrics.ProtocolOverhead())
	}
}

func TestSendLinkNonAdjacentPanics(t *testing.T) {
	n := New(lineGraph(3), &echoProto{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.SendLink(0, 2, &Packet{Kind: packet.Join})
}

func TestSendUnicastTunnelsThroughIntermediates(t *testing.T) {
	p := &echoProto{}
	n := New(lineGraph(4), p)
	n.SendUnicast(0, &Packet{Kind: packet.Join, Dst: 3, Size: 64})
	n.Run()
	// The protocol must see the packet only at the destination…
	if len(p.got) != 1 || p.got[0].node != 3 {
		t.Fatalf("got = %+v, want single delivery at 3", p.got)
	}
	// …with the previous hop visible…
	if p.got[0].pkt.From != 2 {
		t.Fatalf("From = %d, want 2", p.got[0].pkt.From)
	}
	// …but every link crossing accounted (3 links x cost 5).
	if n.Metrics.ProtocolOverhead() != 15 {
		t.Fatalf("protocol overhead = %g, want 15", n.Metrics.ProtocolOverhead())
	}
	if n.Sched.Now() != 6 {
		t.Fatalf("clock = %v, want 6", n.Sched.Now())
	}
}

func TestSendUnicastToSelf(t *testing.T) {
	p := &echoProto{}
	n := New(lineGraph(2), p)
	n.SendUnicast(1, &Packet{Kind: packet.Leave, Dst: 1})
	n.Run()
	if len(p.got) != 1 || p.got[0].node != 1 {
		t.Fatalf("got = %+v", p.got)
	}
	if n.Metrics.ProtocolOverhead() != 0 {
		t.Fatal("self-delivery must not touch any link")
	}
}

func TestUnicastPath(t *testing.T) {
	n := New(lineGraph(4), &echoProto{})
	path := n.UnicastPath(0, 3)
	want := []topology.NodeID{0, 1, 2, 3}
	if len(path) != 4 {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	if got := n.UnicastPath(2, 2); len(got) != 1 || got[0] != 2 {
		t.Fatalf("self path = %v", got)
	}
}

func TestMembershipGroundTruth(t *testing.T) {
	p := &echoProto{}
	n := New(lineGraph(3), p)
	n.HostJoin(2, 9)
	n.HostJoin(0, 9)
	n.HostJoin(0, 7)
	if got := n.Members(9); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("Members(9) = %v", got)
	}
	if !n.IsMember(0, 7) || n.IsMember(2, 7) {
		t.Fatal("IsMember wrong")
	}
	n.HostLeave(0, 9)
	if got := n.Members(9); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Members(9) after leave = %v", got)
	}
	if len(p.joined) != 3 || len(p.left) != 1 {
		t.Fatalf("protocol callbacks: %d joins, %d leaves", len(p.joined), len(p.left))
	}
}

func TestDeliveryTracking(t *testing.T) {
	p := &echoProto{members: map[topology.NodeID]bool{1: true, 2: true}}
	p.onData = func(node topology.NodeID, pkt *Packet) {
		if p.members[node] {
			p.net.DeliverLocal(node, pkt)
		}
		// naive flood one more hop to reach node 2 on the line
		if node == 1 {
			p.net.SendLink(1, 2, pkt)
		}
	}
	n := New(lineGraph(3), p)
	n.HostJoin(1, 5)
	n.HostJoin(2, 5)
	seq := n.SendData(0, 5, 1000)
	n.Run()
	missing, anomalous := n.CheckDelivery(seq)
	if len(missing) != 0 || len(anomalous) != 0 {
		t.Fatalf("missing=%v anomalous=%v", missing, anomalous)
	}
	if n.Metrics.Delivered() != 2 {
		t.Fatalf("delivered = %d", n.Metrics.Delivered())
	}
	// End-to-end delay to node 2 is two hops at delay 2.
	if n.Metrics.MaxEndToEndDelay() != 4 {
		t.Fatalf("max delay = %g, want 4", n.Metrics.MaxEndToEndDelay())
	}
	// Data overhead: links 0-1 and 1-2, cost 5 each.
	if n.Metrics.DataOverhead() != 10 {
		t.Fatalf("data overhead = %g, want 10", n.Metrics.DataOverhead())
	}
}

func TestCheckDeliveryDetectsProblems(t *testing.T) {
	p := &echoProto{}
	p.onData = func(node topology.NodeID, pkt *Packet) {
		// Deliver twice at node 1 (anomaly), never at node 2 (missing).
		if node == 1 {
			p.net.DeliverLocal(node, pkt)
			p.net.DeliverLocal(node, pkt)
		}
	}
	n := New(lineGraph(3), p)
	n.HostJoin(1, 5)
	n.HostJoin(2, 5)
	seq := n.SendData(0, 5, 100)
	n.Run()
	missing, anomalous := n.CheckDelivery(seq)
	if len(missing) != 1 || missing[0] != 2 {
		t.Fatalf("missing = %v, want [2]", missing)
	}
	if len(anomalous) != 1 || anomalous[0] != 1 {
		t.Fatalf("anomalous = %v, want [1]", anomalous)
	}
}

func TestSenderExcludedFromExpected(t *testing.T) {
	p := &echoProto{}
	n := New(lineGraph(2), p)
	n.HostJoin(0, 5)
	seq := n.SendData(0, 5, 100) // the only member is the sender itself
	n.Run()
	missing, anomalous := n.CheckDelivery(seq)
	if len(missing) != 0 || len(anomalous) != 0 {
		t.Fatalf("missing=%v anomalous=%v", missing, anomalous)
	}
}

func TestCheckDeliveryUnknownSeq(t *testing.T) {
	n := New(lineGraph(2), &echoProto{})
	missing, anomalous := n.CheckDelivery(42)
	if missing != nil || anomalous != nil {
		t.Fatal("unknown seq should yield nils")
	}
}

func TestFiniteBandwidthAddsTransmission(t *testing.T) {
	p := &echoProto{}
	n := New(lineGraph(2), p)
	n.Bandwidth = 100 // bytes/s: a 50-byte packet takes 0.5 s to transmit
	n.SendLink(0, 1, &Packet{Kind: packet.Data, Size: 50})
	n.Run()
	// transmission 0.5 + propagation 2.
	if n.Sched.Now() != 2.5 {
		t.Fatalf("delivery at %v, want 2.5", n.Sched.Now())
	}
}

func TestFiniteBandwidthSerialisesLink(t *testing.T) {
	// Two back-to-back packets on the same link direction queue: the
	// second starts transmitting only when the first finishes.
	var arrivals []des.Time
	p2 := &echoProto{}
	n2 := New(lineGraph(2), p2)
	n2.Bandwidth = 100
	p2.onData = func(node topology.NodeID, pkt *Packet) {
		arrivals = append(arrivals, n2.Sched.Now())
	}
	n2.SendLink(0, 1, &Packet{Kind: packet.Data, Size: 50, Seq: 1})
	n2.SendLink(0, 1, &Packet{Kind: packet.Data, Size: 50, Seq: 2})
	n2.Run()
	if len(arrivals) != 2 || arrivals[0] != 2.5 || arrivals[1] != 3.0 {
		t.Fatalf("arrivals = %v, want [2.5 3.0]", arrivals)
	}
	// The reverse direction is an independent queue.
	p3 := &echoProto{}
	n3 := New(lineGraph(2), p3)
	n3.Bandwidth = 100
	var rev []des.Time
	p3.onData = func(node topology.NodeID, pkt *Packet) { rev = append(rev, n3.Sched.Now()) }
	n3.SendLink(0, 1, &Packet{Kind: packet.Data, Size: 50, Seq: 1})
	n3.SendLink(1, 0, &Packet{Kind: packet.Data, Size: 50, Seq: 2})
	n3.Run()
	if len(rev) != 2 || rev[0] != 2.5 || rev[1] != 2.5 {
		t.Fatalf("bidirectional arrivals = %v, want both at 2.5", rev)
	}
}

func TestInfiniteBandwidthDefault(t *testing.T) {
	p := &echoProto{}
	n := New(lineGraph(2), p)
	n.SendLink(0, 1, &Packet{Kind: packet.Data, Size: 1 << 20})
	n.Run()
	if n.Sched.Now() != 2 {
		t.Fatalf("delivery at %v, want propagation-only 2", n.Sched.Now())
	}
}

func TestTraceHook(t *testing.T) {
	p := &echoProto{}
	n := New(lineGraph(3), p)
	var crossings int
	n.Trace = func(from, to topology.NodeID, pkt *Packet) { crossings++ }
	n.SendUnicast(0, &Packet{Kind: packet.Join, Dst: 2})
	n.Run()
	if crossings != 2 {
		t.Fatalf("trace crossings = %d, want 2", crossings)
	}
}
