package netsim

import (
	"testing"

	"scmp/internal/des"
	"scmp/internal/packet"
	"scmp/internal/topology"
)

// churnRec records every membership event the churn driver fires, with
// its simulated time, through the Protocol interface.
type churnRec struct {
	net *Network
	log []churnEv
}

type churnEv struct {
	join bool
	node topology.NodeID
	at   des.Time
}

func (p *churnRec) Name() string                                   { return "churn-rec" }
func (p *churnRec) Attach(n *Network)                              { p.net = n }
func (p *churnRec) HandlePacket(node topology.NodeID, pkt *Packet) {}
func (p *churnRec) HostJoin(node topology.NodeID, g packet.GroupID) {
	p.log = append(p.log, churnEv{true, node, p.net.Now()})
}
func (p *churnRec) HostLeave(node topology.NodeID, g packet.GroupID) {
	p.log = append(p.log, churnEv{false, node, p.net.Now()})
}
func (p *churnRec) SendData(src topology.NodeID, g packet.GroupID, size int, seq uint64) {}

func churnMembers(n int) []topology.NodeID {
	out := make([]topology.NodeID, n)
	for i := range out {
		out[i] = topology.NodeID(i)
	}
	return out
}

func runChurn(plan ChurnPlan) (*Churn, []churnEv) {
	p := &churnRec{}
	n := New(lineGraph(max(len(plan.Members), 2)), p)
	c := n.InstallChurn(plan)
	n.Run()
	return c, p.log
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// TestChurnDeterministic: equal (plan, seed) pairs must produce the
// byte-identical event schedule; a different seed must not.
func TestChurnDeterministic(t *testing.T) {
	plan := ChurnPlan{Group: 1, Members: churnMembers(10), Rate: 200, Duration: 5, Seed: 42}
	c1, log1 := runChurn(plan)
	c2, log2 := runChurn(plan)
	if len(log1) == 0 {
		t.Fatal("no churn events generated")
	}
	if len(log1) != len(log2) {
		t.Fatalf("event counts differ: %d vs %d", len(log1), len(log2))
	}
	for i := range log1 {
		if log1[i] != log2[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, log1[i], log2[i])
		}
	}
	if c1.Events() != c2.Events() || c1.Joins() != c2.Joins() || c1.Rejoins() != c2.Rejoins() || c1.Leaves() != c2.Leaves() {
		t.Fatal("event mix differs between identical plans")
	}
	plan.Seed = 43
	_, log3 := runChurn(plan)
	same := len(log3) == len(log1)
	if same {
		for i := range log1 {
			if log1[i] != log3[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced the identical schedule")
	}
}

// TestChurnRateAndMix: the generated event total tracks Rate*Duration,
// the counts add up, and every event lands inside the churn window.
func TestChurnRateAndMix(t *testing.T) {
	for _, dist := range []ChurnDist{ChurnPoisson, ChurnPareto} {
		plan := ChurnPlan{Group: 1, Members: churnMembers(20), Rate: 400, Dist: dist,
			Start: 1, Duration: 5, Seed: 7}
		c, log := runChurn(plan)
		want := plan.Rate * plan.Duration
		if got := float64(c.Events()); got < want/2 || got > want*2 {
			t.Errorf("%v: %g events, want within 2x of %g", dist, got, want)
		}
		if c.Events() != c.Joins()+c.Rejoins()+c.Leaves() {
			t.Errorf("%v: mix %d+%d+%d != %d", dist, c.Joins(), c.Rejoins(), c.Leaves(), c.Events())
		}
		if c.Events() != len(log) {
			t.Errorf("%v: %d events counted, %d fired", dist, c.Events(), len(log))
		}
		if c.Joins() > len(plan.Members) {
			t.Errorf("%v: %d first-time joins from %d members", dist, c.Joins(), len(plan.Members))
		}
		for _, ev := range log {
			if float64(ev.at) < plan.Start || float64(ev.at) >= plan.Start+plan.Duration {
				t.Fatalf("%v: event at %g outside churn window", dist, float64(ev.at))
			}
		}
	}
}

// TestChurnMemberAlternation: per member the schedule must strictly
// alternate join/leave starting with a join (the driver's renewal
// process is an on/off flip, never two joins in a row).
func TestChurnMemberAlternation(t *testing.T) {
	plan := ChurnPlan{Group: 1, Members: churnMembers(8), Rate: 300, Duration: 4, Seed: 3}
	_, log := runChurn(plan)
	on := map[topology.NodeID]bool{}
	for _, ev := range log {
		if ev.join == on[ev.node] {
			t.Fatalf("member %d fired %v while already in that state", ev.node, ev.join)
		}
		on[ev.node] = ev.join
	}
}

// TestChurnPlanValidation: malformed plans must panic at install time.
func TestChurnPlanValidation(t *testing.T) {
	cases := map[string]ChurnPlan{
		"no members":     {Rate: 10, Duration: 1},
		"zero rate":      {Members: churnMembers(2), Duration: 1},
		"zero duration":  {Members: churnMembers(2), Rate: 10},
		"pareto alpha<1": {Members: churnMembers(2), Rate: 10, Duration: 1, Dist: ChurnPareto, Alpha: 0.5},
	}
	for name, plan := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			n := New(lineGraph(3), &churnRec{})
			n.InstallChurn(plan)
		}()
	}
}

// safeProto is a minimal ParallelSafe protocol so Partition accepts the
// network, letting the churn/partition exclusion be tested both ways.
type safeProto struct{ churnRec }

func (p *safeProto) ParallelWindowSafe() bool { return true }

// TestChurnBlocksPartition: a churned network must decline the
// partitioned drive (serial fallback), and installing churn after
// Partition is a programming error.
func TestChurnBlocksPartition(t *testing.T) {
	plan := ChurnPlan{Group: 1, Members: churnMembers(4), Rate: 50, Duration: 2, Seed: 1}

	n := New(lineGraph(8), &safeProto{})
	n.InstallChurn(plan)
	if n.Partition(2, 1) {
		t.Fatal("Partition accepted a churned network")
	}
	if n.Partitions() != 1 {
		t.Fatalf("Partitions() = %d after declined partition", n.Partitions())
	}

	n2 := New(lineGraph(8), &safeProto{})
	if !n2.Partition(2, 1) {
		t.Fatal("Partition declined a partitionable baseline network")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("InstallChurn after Partition did not panic")
		}
	}()
	n2.InstallChurn(plan)
}

// TestChurnComposesWithFaults: churn and a fault plan run together on
// one network — membership pressure under control loss.
func TestChurnComposesWithFaults(t *testing.T) {
	p := &churnRec{}
	n := New(lineGraph(10), p)
	c := n.InstallChurn(ChurnPlan{Group: 1, Members: churnMembers(10), Rate: 200, Duration: 3, Seed: 5})
	n.InstallFaults(FaultPlan{ControlLoss: 0.3, LossUntil: 3, Seed: 9})
	n.Run()
	if c.Events() == 0 || len(p.log) != c.Events() {
		t.Fatalf("churn under faults fired %d/%d events", len(p.log), c.Events())
	}
}
