// The allocation-floor cross-check ties the static hotalloc analyzer to
// the dynamic reality it models: cmd/scmplint proves the annotated
// data-plane hot paths (des dispatch, netsim fast path, core
// forwarding) contain no unreviewed allocation sites, and this test
// proves the composition of those paths actually runs allocation-free
// at steady state — if either side drifts, one of the two gates trips.
package scmp_test

import (
	"math/rand"
	"testing"

	"scmp/internal/core"
	"scmp/internal/des"
	"scmp/internal/mtree"
	"scmp/internal/netsim"
	"scmp/internal/packet"
	"scmp/internal/topology"
)

// TestHotPathAllocFloor drives the BenchmarkDataPlane load — one data
// packet fanned out over a 40-member SCMP tree on the 400-node Waxman
// instance — through testing.AllocsPerRun and asserts the steady-state
// bill stays at or below 2 allocs per packet (the reviewed budget: the
// delivery ground-truth record; every per-hop cost is pooled).
func TestHotPathAllocFloor(t *testing.T) {
	wg, err := topology.Waxman(topology.DefaultWaxman(400), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	g := wg.Graph.ScaleDelays(1e-3)
	s := core.New(core.Config{MRouter: 0, Kappa: 1.5})
	n := netsim.New(g, s)
	rnd := rand.New(rand.NewSource(7))
	members := make([]topology.NodeID, 0, 40)
	for _, v := range rnd.Perm(g.N()) {
		if v != 0 {
			members = append(members, topology.NodeID(v))
		}
		if len(members) == 40 {
			break
		}
	}
	for i, m := range members {
		m := m
		n.Sched.At(des.Time(float64(i)*0.01), func() { n.HostJoin(m, 1) })
	}
	n.Run() // tree installed
	src := members[0]

	// Prime the packet pool and any lazy scratch (busy horizons, sink
	// buffers) so the measured runs see steady state.
	for i := 0; i < 16; i++ {
		n.SendData(src, 1, packet.DefaultDataSize)
		n.Run()
	}

	const budget = 2.0
	avg := testing.AllocsPerRun(200, func() {
		n.SendData(src, 1, packet.DefaultDataSize)
		n.Run()
	})
	if avg > budget {
		t.Errorf("data plane allocates %.2f allocs per packet fan-out, budget %.0f; "+
			"run `go run ./cmd/scmplint -only hotalloc ./...` to locate the new allocation site",
			avg, budget)
	}
}

// TestDCDMAllocFloor pins the incremental DCDM engine's steady-state
// bill: one Join plus one Leave of the same router, on a 400-node tree
// with 128 resident members, must average at most one allocation per
// operation — the grafted path slice the Join hands to its caller.
// Everything else (prune walks, candidate ordering, the bound multiset)
// runs on reused scratch.
func TestDCDMAllocFloor(t *testing.T) {
	if mtree.InvariantChecksArmed {
		t.Skip("invariants build: per-mutation Validate allocates freely")
	}
	wg, err := topology.Waxman(topology.DefaultWaxman(400), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	g := wg.Graph
	rnd := rand.New(rand.NewSource(7))
	d := mtree.NewDCDM(g, 0, 1.5, nil, nil)
	joined := 0
	for _, v := range rnd.Perm(g.N()) {
		if v == 0 {
			continue
		}
		d.Join(topology.NodeID(v))
		if joined++; joined == 128 {
			break
		}
	}
	var pool []topology.NodeID
	for v := topology.NodeID(1); int(v) < g.N() && len(pool) < 16; v++ {
		if !d.Tree().OnTree(v) {
			pool = append(pool, v)
		}
	}
	if len(pool) == 0 {
		t.Fatal("fixture degenerate: tree covers the whole graph")
	}
	// Warm scratch (candidate ordering buffers, prune stacks, heap
	// capacity) so the measured runs see steady state.
	for i := 0; i < 32; i++ {
		v := pool[i%len(pool)]
		d.Join(v)
		d.Leave(v)
	}

	const budget = 2.0 // per Join+Leave pair: the join's path slice, nothing else
	i := 0
	avg := testing.AllocsPerRun(200, func() {
		v := pool[i%len(pool)]
		i++
		d.Join(v)
		d.Leave(v)
	})
	if avg > budget {
		t.Errorf("steady-state DCDM Join+Leave allocates %.2f per pair, budget %.0f (<=1 per op); "+
			"run `go run ./cmd/scmplint -only hotalloc ./internal/mtree/` to locate the new allocation site",
			avg, budget)
	}
}
