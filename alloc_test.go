// The allocation-floor cross-check ties the static hotalloc analyzer to
// the dynamic reality it models: cmd/scmplint proves the annotated
// data-plane hot paths (des dispatch, netsim fast path, core
// forwarding) contain no unreviewed allocation sites, and this test
// proves the composition of those paths actually runs allocation-free
// at steady state — if either side drifts, one of the two gates trips.
package scmp_test

import (
	"math/rand"
	"testing"

	"scmp/internal/core"
	"scmp/internal/des"
	"scmp/internal/netsim"
	"scmp/internal/packet"
	"scmp/internal/topology"
)

// TestHotPathAllocFloor drives the BenchmarkDataPlane load — one data
// packet fanned out over a 40-member SCMP tree on the 400-node Waxman
// instance — through testing.AllocsPerRun and asserts the steady-state
// bill stays at or below 2 allocs per packet (the reviewed budget: the
// delivery ground-truth record; every per-hop cost is pooled).
func TestHotPathAllocFloor(t *testing.T) {
	wg, err := topology.Waxman(topology.DefaultWaxman(400), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	g := wg.Graph.ScaleDelays(1e-3)
	s := core.New(core.Config{MRouter: 0, Kappa: 1.5})
	n := netsim.New(g, s)
	rnd := rand.New(rand.NewSource(7))
	members := make([]topology.NodeID, 0, 40)
	for _, v := range rnd.Perm(g.N()) {
		if v != 0 {
			members = append(members, topology.NodeID(v))
		}
		if len(members) == 40 {
			break
		}
	}
	for i, m := range members {
		m := m
		n.Sched.At(des.Time(float64(i)*0.01), func() { n.HostJoin(m, 1) })
	}
	n.Run() // tree installed
	src := members[0]

	// Prime the packet pool and any lazy scratch (busy horizons, sink
	// buffers) so the measured runs see steady state.
	for i := 0; i < 16; i++ {
		n.SendData(src, 1, packet.DefaultDataSize)
		n.Run()
	}

	const budget = 2.0
	avg := testing.AllocsPerRun(200, func() {
		n.SendData(src, 1, packet.DefaultDataSize)
		n.Run()
	})
	if avg > budget {
		t.Errorf("data plane allocates %.2f allocs per packet fan-out, budget %.0f; "+
			"run `go run ./cmd/scmplint -only hotalloc ./...` to locate the new allocation site",
			avg, budget)
	}
}
