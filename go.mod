module scmp

go 1.22
