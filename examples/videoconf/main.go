// Videoconf: a many-to-many conference over SCMP, the workload the
// m-router's switching fabric is designed for (§II-B).
//
// Eight conference sites on a 30-node Waxman domain all join one group
// and all take turns speaking. The example shows:
//
//  1. the shared bi-directional tree carrying every speaker without a
//     per-source tree (contrast with DVMRP/MOSPF state);
//
//  2. the m-router's sandwich fabric configured to merge the sites'
//     uplinks onto the group's tree root port, with the cross-group
//     isolation invariant checked against a second conference.
//
//     go run ./examples/videoconf
package main

import (
	"fmt"
	"scmp/internal/rng"

	"scmp/internal/core"
	"scmp/internal/fabric"
	"scmp/internal/netsim"
	"scmp/internal/packet"
	"scmp/internal/topology"
)

func main() {
	rng := rng.New(7)
	wg, err := topology.Waxman(topology.DefaultWaxman(30), rng)
	if err != nil {
		panic(err)
	}
	g := wg.Graph

	const conf packet.GroupID = 1
	mrouter := topology.NodeID(0)
	scmp := core.New(core.Config{MRouter: mrouter, Kappa: 1.5})
	net := netsim.New(g, scmp)

	// Eight conference sites join.
	sites := make([]topology.NodeID, 0, 8)
	for _, v := range rng.Perm(g.N()) {
		if topology.NodeID(v) == mrouter {
			continue
		}
		sites = append(sites, topology.NodeID(v))
		if len(sites) == 8 {
			break
		}
	}
	for _, s := range sites {
		net.HostJoin(s, conf)
	}
	net.Run()
	tree := scmp.GroupTree(conf)
	fmt.Printf("conference of %d sites: shared tree cost %.0f, %d routers, delay %.0f\n",
		len(sites), tree.Cost(), tree.Size(), tree.TreeDelay())

	// Every site speaks once; every packet must reach the other seven.
	ok := true
	for _, speaker := range sites {
		seq := net.SendData(speaker, conf, packet.DefaultDataSize)
		net.Run()
		if missing, anomalous := net.CheckDelivery(seq); len(missing) > 0 || len(anomalous) > 0 {
			fmt.Printf("speaker %d: missing=%v anomalous=%v\n", speaker, missing, anomalous)
			ok = false
		}
	}
	if ok {
		fmt.Printf("all %d speakers delivered to all other sites exactly once\n", len(sites))
	}
	fmt.Printf("data overhead %.0f cost units, protocol overhead %.0f cost units\n",
		net.Metrics.DataOverhead(), net.Metrics.ProtocolOverhead())

	// --- the m-router's switching fabric ------------------------------
	// Inside the m-router, the sites' uplinks land on input ports; the
	// sandwich network (PN + CCN + DN) merges each conference onto the
	// single output port rooting its tree. A second conference shares
	// the fabric without ever touching the first.
	fab, err := fabric.New(16)
	if err != nil {
		panic(err)
	}
	cfg, err := fab.Configure(map[packet.GroupID]fabric.GroupConn{
		conf: {Inputs: []int{0, 2, 4, 6, 8, 10, 12, 14}, Output: 3},
		2:    {Inputs: []int{1, 5, 9}, Output: 11},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nfabric 16x16: %d switching stages, merge depth %d\n", cfg.Stages(), cfg.MergeDepth())
	for _, in := range []int{0, 14, 5} {
		out, gid, _ := cfg.Route(in)
		fmt.Printf("input %2d (group %d sources) -> output %d\n", in, gid, out)
	}
	if _, _, busy := cfg.Route(7); !busy {
		fmt.Println("idle input 7 carries nothing — cross-conference isolation holds")
	}
}
