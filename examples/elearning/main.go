// E-learning: one lecturer streaming to a class whose membership churns,
// compared live across all four protocols on the same scenario — a
// miniature of the paper's Fig. 8/9 with joins and leaves mid-stream.
//
// Students join over the first minutes, some drop out mid-lecture, and
// the lecturer sends one packet per second throughout. The run prints
// per-protocol data overhead, protocol overhead and maximum end-to-end
// delay, with delivery verified packet by packet.
//
//	go run ./examples/elearning
package main

import (
	"fmt"
	"scmp/internal/rng"

	"scmp/internal/core"
	"scmp/internal/des"
	"scmp/internal/netsim"
	"scmp/internal/packet"
	"scmp/internal/protocols/cbt"
	"scmp/internal/protocols/dvmrp"
	"scmp/internal/protocols/mospf"
	"scmp/internal/topology"
)

const (
	group    packet.GroupID = 1
	lectureS                = 60.0
)

func main() {
	g, err := topology.Random(topology.DefaultRandom(40, 3), rng.New(11))
	if err != nil {
		panic(err)
	}
	g = g.ScaleDelays(1e-3) // read link delays as milliseconds

	// Shared scenario: lecturer, students, churn schedule.
	rng := rng.New(5)
	lecturer := topology.NodeID(rng.Intn(g.N()))
	students := make([]topology.NodeID, 0, 12)
	for _, v := range rng.Perm(g.N()) {
		if topology.NodeID(v) == lecturer {
			continue
		}
		students = append(students, topology.NodeID(v))
		if len(students) == 12 {
			break
		}
	}
	center := topology.NodeID(0) // m-router / CBT core

	fmt.Printf("lecture: 40-router domain, lecturer at %d, %d students, %d s at 1 pkt/s\n",
		lecturer, len(students), int(lectureS))
	fmt.Printf("%-8s %16s %16s %12s %12s\n", "protocol", "data overhead", "proto overhead", "max delay", "missed")

	for _, name := range []string{"SCMP", "DVMRP", "MOSPF", "CBT"} {
		var proto netsim.Protocol
		switch name {
		case "SCMP":
			proto = core.New(core.Config{MRouter: center, Kappa: 1.5})
		case "DVMRP":
			proto = dvmrp.New(10)
		case "MOSPF":
			proto = mospf.New()
		case "CBT":
			proto = cbt.New(center)
		}
		net := netsim.New(g, proto)

		// Students trickle in over the first 10 s; a third leave at 40 s.
		for i, s := range students {
			s := s
			net.Sched.At(des.Time(float64(i)*0.8), func() { net.HostJoin(s, group) })
		}
		for i, s := range students {
			if i%3 == 0 {
				s := s
				net.Sched.At(40, func() { net.HostLeave(s, group) })
			}
		}
		var seqs []uint64
		for t := 1.0; t <= lectureS; t++ {
			t := t
			net.Sched.At(des.Time(t), func() {
				seqs = append(seqs, net.SendData(lecturer, group, packet.DefaultDataSize))
			})
		}
		net.RunUntil(des.Time(lectureS))
		net.Run()

		missed := 0
		for _, seq := range seqs {
			missing, _ := net.CheckDelivery(seq)
			missed += len(missing)
		}
		m := net.Metrics
		fmt.Printf("%-8s %16.0f %16.0f %11.3fs %12d\n",
			name, m.DataOverhead(), m.ProtocolOverhead(), m.MaxEndToEndDelay(), missed)
	}
	fmt.Println("\nexpected shape (paper Fig. 8/9): DVMRP tops data overhead, MOSPF tops")
	fmt.Println("protocol overhead, SCMP carries the least data; SCMP/CBT delay is")
	fmt.Println("slightly above the source-tree protocols. A handful of misses is")
	fmt.Println("normal: packets sent while a join or leave is still propagating can")
	fmt.Println("race the tree installation, as in any convergence window.")
}
