// Quickstart: a minimal end-to-end SCMP session on a six-node domain.
//
// It builds the topology, attaches SCMP with node 0 as the m-router,
// joins three member subnets, prints every packet the protocol puts on
// the wire (watch the JOINs go up and the BRANCH packets come down),
// sends data from both an on-tree member and an off-tree source, and
// finishes with the routing entries and run metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"scmp/internal/core"
	"scmp/internal/netsim"
	"scmp/internal/packet"
	"scmp/internal/topology"
)

func main() {
	// A two-rail topology: a fast expensive path 0-1-2 and a slow cheap
	// path 0-3-2, with member stubs 2-4 and 3-5. Link labels are
	// (delay, cost), as in the paper's Fig. 5.
	g := topology.New(6)
	g.MustAddEdge(0, 1, 1, 10)
	g.MustAddEdge(1, 2, 1, 10)
	g.MustAddEdge(0, 3, 6, 1)
	g.MustAddEdge(3, 2, 6, 1)
	g.MustAddEdge(2, 4, 1, 1)
	g.MustAddEdge(3, 5, 2, 1)

	const group packet.GroupID = 42
	scmp := core.New(core.Config{MRouter: 0, Kappa: 1.5})
	net := netsim.New(g, scmp)
	net.Trace = func(from, to topology.NodeID, pkt *netsim.Packet) {
		fmt.Printf("  t=%6.2f  %-12v %d -> %d\n", float64(net.Now()), pkt.Kind, from, to)
	}

	fmt.Println("== three subnets join group 42 ==")
	for _, dr := range []topology.NodeID{4, 5, 2} {
		fmt.Printf("subnet at router %d reports a member (IGMP):\n", dr)
		net.HostJoin(dr, group)
		net.Run()
	}

	fmt.Println("\n== the m-router's tree ==")
	tree := scmp.GroupTree(group)
	fmt.Printf("cost=%.0f, delay=%.0f, nodes=%v\n", tree.Cost(), tree.TreeDelay(), tree.Nodes())
	for _, v := range tree.Nodes() {
		if e, ok := scmp.Entry(v, group); ok {
			fmt.Printf("router %d: upstream=%2d downstream=%v local=%v\n",
				v, e.Upstream, e.Downstream, e.HasLocal)
		}
	}

	fmt.Println("\n== member 4 multicasts (bi-directional tree, no m-router detour) ==")
	seq := net.SendData(4, group, packet.DefaultDataSize)
	net.Run()
	report(net, seq)

	fmt.Println("\n== off-tree router 1 multicasts (encapsulated to the m-router) ==")
	seq = net.SendData(1, group, packet.DefaultDataSize)
	net.Run()
	report(net, seq)

	m := net.Metrics
	fmt.Printf("\n== totals ==\ndata overhead: %.0f cost units, protocol overhead: %.0f cost units\n",
		m.DataOverhead(), m.ProtocolOverhead())
	fmt.Printf("deliveries: %d, max end-to-end delay: %.1f\n", m.Delivered(), m.MaxEndToEndDelay())
}

func report(net *netsim.Network, seq uint64) {
	missing, anomalous := net.CheckDelivery(seq)
	if len(missing) == 0 && len(anomalous) == 0 {
		fmt.Println("  delivered to every member exactly once")
		return
	}
	fmt.Printf("  PROBLEM: missing=%v anomalous=%v\n", missing, anomalous)
}
