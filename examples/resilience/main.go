// Resilience: the hot-standby m-router (§V) and the service database
// (§II-C) in action.
//
// A domain runs SCMP with a primary m-router and a concurrently-running
// secondary. Members join (each change is replicated to the secondary),
// a stream flows, then the primary dies mid-stream: the secondary takes
// over, rebuilds every tree rooted at itself from the replicated
// membership, and the stream continues. The run ends with the
// accounting view: per-member on-time and the event log an ISP would
// bill from.
//
//	go run ./examples/resilience
package main

import (
	"fmt"
	"scmp/internal/rng"

	"scmp/internal/core"
	"scmp/internal/des"
	"scmp/internal/netsim"
	"scmp/internal/packet"
	"scmp/internal/topology"
)

const group packet.GroupID = 1

func main() {
	g, err := topology.Random(topology.DefaultRandom(30, 4), rng.New(17))
	if err != nil {
		panic(err)
	}
	g = g.ScaleDelays(1e-3)

	scmp := core.New(core.Config{
		MRouter: 1,
		Standby: 2,
		Kappa:   1.5,
		// Give the m-router a measurable control plane: 5 ms per
		// request across 2 processors (§II-B).
		ServiceTime: 0.005,
		Processors:  2,
	})
	net := netsim.New(g, scmp)

	members := []topology.NodeID{5, 9, 14, 20, 25}
	for i, m := range members {
		m := m
		net.Sched.At(des.Time(float64(i)*0.5), func() { net.HostJoin(m, group) })
	}
	source := topology.NodeID(7)
	missed, delivered := 0, 0
	for t := 1.0; t <= 20; t++ {
		t := t
		net.Sched.At(des.Time(t), func() {
			seq := net.SendData(source, group, packet.DefaultDataSize)
			net.Sched.After(0.5, func() { // check after propagation
				missing, _ := net.CheckDelivery(seq)
				missed += len(missing)
				delivered++
			})
		})
	}
	// Disaster at t=10: the primary m-router fails.
	net.Sched.At(10, func() {
		fmt.Printf("t=10.0  PRIMARY m-router (node %d) fails; standby (node %d) takes over\n",
			scmp.MRouter(), 2)
		scmp.Failover()
	})
	net.RunUntil(25)
	net.Run()

	tree := scmp.GroupTree(group)
	fmt.Printf("\nafter failover: active m-router = node %d, tree root = %d\n",
		scmp.MRouter(), tree.Root())
	fmt.Printf("tree cost %.0f, members %v\n", tree.Cost(), tree.Members())
	fmt.Printf("stream: %d packets checked, %d member-deliveries missed during the switchover\n",
		delivered, missed)

	stats := scmp.ServiceStats()
	fmt.Printf("\nm-router control plane: %d requests, mean wait %.4fs, max wait %.4fs\n",
		stats.Requests, stats.MeanWait, stats.MaxWait)

	acct := scmp.Accounting()
	fmt.Println("\naccounting (per-member on-time at the primary until failover):")
	for _, m := range members {
		fmt.Printf("  member %2d: %.1fs online\n", m, float64(acct.MemberOnTime(group, m)))
	}
	fmt.Printf("event log: %d records (ALLOCATE/JOIN/LEAVE/...)\n", len(acct.Log()))
}
