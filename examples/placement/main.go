// Placement: where should the ISP install the m-router? (§IV-A)
//
// The paper offers three heuristics — least average delay, largest
// degree, and a node on a diameter path — and notes none dominates
// universally. This example scores all three against random placement
// on fresh Waxman domains, then shows the per-topology winner varying.
//
//	go run ./examples/placement
package main

import (
	"fmt"
	"os"
	"scmp/internal/rng"

	"scmp/internal/experiment"
	"scmp/internal/mtree"
	"scmp/internal/topology"
)

func main() {
	cfg := experiment.PlacementConfig{Nodes: 60, GroupSize: 15, Seeds: 4, Trials: 8, Kappa: 1.5}
	points := experiment.RunPlacement(cfg)
	experiment.WritePlacement(os.Stdout, points)

	// Per-topology winners: the paper observes "there is no such
	// location of the m-router that it has the best performance under
	// all conditions".
	fmt.Println("\nper-topology winners (DCDM tree cost):")
	for seed := int64(0); seed < 4; seed++ {
		rng := rng.New(seed)
		wg, err := topology.Waxman(topology.DefaultWaxman(cfg.Nodes), rng)
		if err != nil {
			panic(err)
		}
		g := wg.Graph
		spDelay := topology.NewAllPairs(g, topology.ByDelay)
		spCost := topology.NewAllPairs(g, topology.ByCost)
		members := make([]topology.NodeID, 0, cfg.GroupSize)
		for _, v := range rng.Perm(g.N())[:cfg.GroupSize] {
			members = append(members, topology.NodeID(v))
		}
		bestRule, bestCost := "", 0.0
		for _, rule := range experiment.PlacementRules {
			root := experiment.Place(rule, g, rng)
			d := mtree.NewDCDM(g, root, cfg.Kappa, spDelay, spCost)
			for _, m := range members {
				if m != root {
					d.Join(m)
				}
			}
			cost := d.Tree().Cost()
			fmt.Printf("  topology %d, %-16s root=%2d cost=%8.0f\n", seed, rule, root, cost)
			if bestRule == "" || cost < bestCost {
				bestRule, bestCost = rule, cost
			}
		}
		fmt.Printf("  topology %d winner: %s\n", seed, bestRule)
	}
}
