// Benchmarks regenerating the paper's evaluation, one per table/figure,
// plus ablations for the design choices called out in DESIGN.md. Each
// benchmark reports the headline metric(s) of its figure via
// b.ReportMetric so a -bench run doubles as a results table:
//
//	go test -bench=. -benchmem
package scmp_test

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"scmp/internal/core"
	"scmp/internal/des"
	"scmp/internal/experiment"
	"scmp/internal/fabric"
	"scmp/internal/mtree"
	"scmp/internal/netsim"
	"scmp/internal/packet"
	"scmp/internal/topology"
)

// benchFig7Cfg is a reduced-width Fig. 7 sweep sized for benchmarking;
// the full paper configuration runs via cmd/scmpsim.
func benchFig7Cfg() experiment.Fig7Config {
	return experiment.Fig7Config{
		Nodes: 100, Alpha: 0.25, Beta: 0.2,
		GroupSizes: []int{10, 50, 90},
		Seeds:      3,
	}
}

// BenchmarkFig7TreeQuality regenerates Fig. 7 (a–f): tree delay and tree
// cost for DCDM/KMB/SPT across group sizes and constraint levels.
func BenchmarkFig7TreeQuality(b *testing.B) {
	var points []experiment.Fig7Point
	for i := 0; i < b.N; i++ {
		points = experiment.RunFig7(benchFig7Cfg())
	}
	for _, p := range points {
		if p.Level == "moderate" && p.GroupSize == 50 {
			b.ReportMetric(p.TreeCost.Mean(), p.Algorithm+"_cost_g50")
			b.ReportMetric(p.TreeDelay.Mean(), p.Algorithm+"_delay_g50")
		}
	}
}

func benchFig89Cfg() experiment.Fig89Config {
	return experiment.Fig89Config{
		GroupSizes:    []int{8, 24, 40},
		Seeds:         2,
		SimTime:       15,
		DataRate:      1,
		PruneLifetime: 10,
		Topologies:    []string{experiment.TopoArpanet, experiment.TopoRand3},
	}
}

// BenchmarkFig8Overhead regenerates Fig. 8 (a–f): data overhead and
// protocol overhead per protocol.
func BenchmarkFig8Overhead(b *testing.B) {
	var points []experiment.Fig89Point
	for i := 0; i < b.N; i++ {
		points = experiment.RunFig89(benchFig89Cfg())
	}
	for _, p := range points {
		if p.Topology == experiment.TopoRand3 && p.GroupSize == 24 {
			b.ReportMetric(p.DataOverhead.Mean(), p.Protocol+"_data_g24")
			b.ReportMetric(p.ProtoOverhead.Mean(), p.Protocol+"_proto_g24")
		}
	}
}

// BenchmarkFig89Parallelism compares the serial path against worker-pool
// widths on the same Fig. 8/9 sweep. Output is byte-identical across
// widths (see internal/core's cross-mode tests); this measures only
// wall-clock. On a single-core box the widths tie — the speedup shows up
// where GOMAXPROCS > 1.
func BenchmarkFig89Parallelism(b *testing.B) {
	for _, width := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("parallel%d", width), func(b *testing.B) {
			cfg := benchFig89Cfg()
			cfg.Parallel = width
			for i := 0; i < b.N; i++ {
				experiment.RunFig89(cfg)
			}
		})
	}
}

// BenchmarkFig9Delay regenerates Fig. 9 (a–c): maximum end-to-end delay.
func BenchmarkFig9Delay(b *testing.B) {
	var points []experiment.Fig89Point
	for i := 0; i < b.N; i++ {
		points = experiment.RunFig89(benchFig89Cfg())
	}
	for _, p := range points {
		if p.Topology == experiment.TopoRand3 && p.GroupSize == 24 {
			b.ReportMetric(p.MaxE2E.Mean()*1000, p.Protocol+"_maxdelay_ms_g24")
		}
	}
}

// BenchmarkFig7xFamilies regenerates the topology-sensitivity study:
// DCDM/KMB cost and delay relative to SPT per topology family.
func BenchmarkFig7xFamilies(b *testing.B) {
	cfg := experiment.Fig7xConfig{GroupSize: 15, Seeds: 2, Kappa: 1.5}
	var points []experiment.Fig7xPoint
	for i := 0; i < b.N; i++ {
		points = experiment.RunFig7x(cfg)
	}
	for _, p := range points {
		if p.Algorithm == "DCDM" {
			b.ReportMetric(p.CostVsSPT.Mean(), p.Family+"_dcdm_costratio")
		}
	}
}

// BenchmarkPlacement regenerates the §IV-A placement study.
func BenchmarkPlacement(b *testing.B) {
	cfg := experiment.PlacementConfig{Nodes: 60, GroupSize: 15, Seeds: 3, Trials: 5, Kappa: 1.5}
	var points []experiment.PlacementPoint
	for i := 0; i < b.N; i++ {
		points = experiment.RunPlacement(cfg)
	}
	for _, p := range points {
		b.ReportMetric(p.TreeCost.Mean(), p.Rule+"_cost")
	}
}

// BenchmarkFabric measures the m-router fabric: configuring a fully
// loaded 64-port sandwich network for simultaneous many-to-many groups
// and routing every input (§II-B).
func BenchmarkFabric(b *testing.B) {
	fab, err := fabric.New(64)
	if err != nil {
		b.Fatal(err)
	}
	groups := map[packet.GroupID]fabric.GroupConn{}
	for g := 0; g < 8; g++ {
		ins := make([]int, 8)
		for i := range ins {
			ins[i] = g*8 + i
		}
		groups[packet.GroupID(g+1)] = fabric.GroupConn{Inputs: ins, Output: g}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg, err := fab.Configure(groups)
		if err != nil {
			b.Fatal(err)
		}
		for in := 0; in < 64; in++ {
			cfg.Route(in)
		}
	}
}

// BenchmarkDCDMConstraint is the ablation for design decision 1 in
// DESIGN.md: how the constraint multiplier kappa trades tree delay for
// tree cost. It reports the cost and delay of the same member set under
// kappa in {1, 1.25, 1.5, 2, inf}.
func BenchmarkDCDMConstraint(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	wg, err := topology.Waxman(topology.DefaultWaxman(100), rng)
	if err != nil {
		b.Fatal(err)
	}
	g := wg.Graph
	spDelay := topology.NewAllPairs(g, topology.ByDelay)
	spCost := topology.NewAllPairs(g, topology.ByCost)
	var members []topology.NodeID
	for _, v := range rng.Perm(g.N())[:40] {
		if v != 0 {
			members = append(members, topology.NodeID(v))
		}
	}
	kappas := []struct {
		name string
		k    float64
	}{
		{"k1.00", 1}, {"k1.25", 1.25}, {"k1.50", 1.5}, {"k2.00", 2}, {"kinf", math.Inf(1)},
	}
	type result struct{ cost, delay float64 }
	results := map[string]result{}
	for i := 0; i < b.N; i++ {
		for _, kp := range kappas {
			d := mtree.NewDCDM(g, 0, kp.k, spDelay, spCost)
			for _, m := range members {
				d.Join(m)
			}
			results[kp.name] = result{d.Tree().Cost(), d.Tree().TreeDelay()}
		}
	}
	for _, kp := range kappas {
		b.ReportMetric(results[kp.name].cost, kp.name+"_cost")
		b.ReportMetric(results[kp.name].delay, kp.name+"_delay")
	}
}

// BenchmarkTreeVsBranch is the ablation for design decision 2 in
// DESIGN.md: protocol overhead with the BRANCH optimisation on vs
// forced whole-tree TREE packets for every join (the paper: "if the
// change is small, using a TREE packet containing the whole tree
// structure is too expensive").
func BenchmarkTreeVsBranch(b *testing.B) {
	g, err := topology.Random(topology.DefaultRandom(50, 3), rand.New(rand.NewSource(9)))
	if err != nil {
		b.Fatal(err)
	}
	g = g.ScaleDelays(1e-3)
	rng := rand.New(rand.NewSource(10))
	var members []topology.NodeID
	for _, v := range rng.Perm(g.N())[:25] {
		if v != 0 {
			members = append(members, topology.NodeID(v))
		}
	}
	run := func(disableBranch bool) (protoUnits float64, protoBytes int64) {
		s := core.New(core.Config{MRouter: 0, Kappa: 1.5, DisableBranch: disableBranch})
		n := netsim.New(g, s)
		for i, m := range members {
			m := m
			n.Sched.At(des.Time(float64(i))*0.01, func() { n.HostJoin(m, 1) })
		}
		n.Run()
		return n.Metrics.ProtocolOverhead(), n.Metrics.ProtocolBytes()
	}
	var withBranch, withoutBranch float64
	var withBranchBytes, withoutBranchBytes int64
	for i := 0; i < b.N; i++ {
		withBranch, withBranchBytes = run(false)
		withoutBranch, withoutBranchBytes = run(true)
	}
	b.ReportMetric(withBranch, "branch_proto_units")
	b.ReportMetric(withoutBranch, "treeonly_proto_units")
	b.ReportMetric(float64(withBranchBytes), "branch_proto_bytes")
	b.ReportMetric(float64(withoutBranchBytes), "treeonly_proto_bytes")
}

// BenchmarkStateScalability regenerates the routing-state study (the
// paper's §I scalability argument): per-router state entries at 8
// groups x 4 senders, per protocol.
func BenchmarkStateScalability(b *testing.B) {
	cfg := experiment.StateConfig{
		Nodes: 40, Degree: 4, Groups: []int{8},
		Members: 6, Senders: 4, PacketsPer: 2, Seeds: 2,
	}
	var points []experiment.StatePoint
	for i := 0; i < b.N; i++ {
		points = experiment.RunState(cfg)
	}
	for _, p := range points {
		b.ReportMetric(p.MaxState.Mean(), p.Protocol+"_maxstate_g8")
	}
}

// BenchmarkMRouterLoad is the §II-B centralisation ablation: a burst of
// joins hits the m-router with varying parallel service capacity; the
// reported metric is the worst queueing wait (seconds) a JOIN suffered
// before the m-router's tree computation started.
func BenchmarkMRouterLoad(b *testing.B) {
	g, err := topology.Random(topology.DefaultRandom(60, 4), rand.New(rand.NewSource(21)))
	if err != nil {
		b.Fatal(err)
	}
	g = g.ScaleDelays(1e-3)
	run := func(processors int) float64 {
		s := core.New(core.Config{MRouter: 0, ServiceTime: 0.02, Processors: processors})
		n := netsim.New(g, s)
		for v := 1; v <= 40; v++ {
			n.HostJoin(topology.NodeID(v), 1)
		}
		n.Run()
		return s.ServiceStats().MaxWait
	}
	results := map[int]float64{}
	for i := 0; i < b.N; i++ {
		for _, p := range []int{1, 2, 4, 8} {
			results[p] = run(p)
		}
	}
	for _, p := range []int{1, 2, 4, 8} {
		b.ReportMetric(results[p], fmt.Sprintf("maxwait_s_p%d", p))
	}
}

// BenchmarkChurn measures the control plane under the high-churn
// membership engine: a 16-member population flaps at 2000 events/s for
// 3 simulated seconds under 5% control loss against a slow m-router,
// with the overload defences (admission control, retry budgets, refresh
// suppression) on. Reported metrics are simulator throughput and the
// peak pending-operation queue the admission limit is bounding.
func BenchmarkChurn(b *testing.B) {
	g, err := topology.Random(topology.DefaultRandom(50, 3), rand.New(rand.NewSource(17)))
	if err != nil {
		b.Fatal(err)
	}
	g = g.ScaleDelays(1e-3)
	members := make([]topology.NodeID, 16)
	for i := range members {
		members[i] = topology.NodeID(i + 1)
	}
	var events uint64
	maxBacklog := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := core.New(core.Config{
			MRouter: 0, Kappa: 1.5,
			AckTimeout: 0.05, RetryCap: 8, RefreshInterval: 2,
			ServiceTime: 0.00075, Processors: 1,
			AdmitLimit: 32, RetryBudget: 4, RefreshSuppress: true,
		})
		n := netsim.New(g, s)
		n.InstallChurn(netsim.ChurnPlan{
			Group: 1, Members: members, Rate: 2000, Duration: 3, Seed: 13,
		})
		n.InstallFaults(netsim.FaultPlan{ControlLoss: 0.05, LossUntil: 3, Seed: 7})
		for t := 0; t < 40; t++ {
			n.Sched.At(des.Time(float64(t))/10, func() {
				if q := s.ControlBacklog(); q > maxBacklog {
					maxBacklog = q
				}
			})
		}
		n.RunUntil(9)
		s.Quiesce()
		n.Run()
		events += n.EventsFired()
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
	b.ReportMetric(float64(maxBacklog), "max_backlog")
}

// BenchmarkFaultRecompute measures the routing work a fault event
// triggers: rebuilding the delay and cost path tables with a link
// avoided. "eager" pays for all n sources up front (the historical
// behaviour); "lazy" builds the table shell and then materialises only
// the handful of rows a repair actually consults — the pattern
// core/repair.go's refreshPathTables now follows. Serial and parallel
// variants pin GOMAXPROCS to show the sharded eager build's scaling.
func BenchmarkFaultRecompute(b *testing.B) {
	wg, err := topology.Waxman(topology.DefaultWaxman(400), rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	g := wg.Graph
	// Avoid one real link, as a LinkDown fault would.
	var au, av topology.NodeID = -1, -1
	for u := 0; u < g.N() && au < 0; u++ {
		for _, l := range g.Neighbors(topology.NodeID(u)) {
			au, av = topology.NodeID(u), l.To
			break
		}
	}
	avoid := func(u, v topology.NodeID) bool {
		return (u == au && v == av) || (u == av && v == au)
	}
	consulted := []topology.NodeID{0, 7, 42, 99, 123, 250, 311, 399}
	eager := func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d := topology.NewAllPairsAvoid(g, topology.ByDelay, avoid)
			c := topology.NewAllPairsAvoid(g, topology.ByCost, avoid)
			for _, s := range consulted {
				d.Row(s)
				c.Row(s)
			}
		}
	}
	lazy := func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d := topology.NewLazyAllPairsAvoid(g, topology.ByDelay, avoid)
			c := topology.NewLazyAllPairsAvoid(g, topology.ByCost, avoid)
			for _, s := range consulted {
				d.Row(s)
				c.Row(s)
			}
		}
	}
	for _, v := range []struct {
		name  string
		procs int
		fn    func(*testing.B)
	}{
		{"eager-serial", 1, eager},
		{"eager-parallel", 4, eager},
		{"lazy-serial", 1, lazy},
		{"lazy-parallel", 4, lazy},
	} {
		b.Run(v.name, func(b *testing.B) {
			prev := runtime.GOMAXPROCS(v.procs)
			defer runtime.GOMAXPROCS(prev)
			b.ResetTimer()
			v.fn(b)
		})
	}
}

// BenchmarkDVMRPPruneLifetime is the ablation for design decision 3:
// DVMRP data overhead as a function of the prune timeout (shorter
// timeouts re-flood more often).
func BenchmarkDVMRPPruneLifetime(b *testing.B) {
	cfgFor := func(lifetime des.Time) experiment.Fig89Config {
		return experiment.Fig89Config{
			GroupSizes: []int{16}, Seeds: 2, SimTime: 20, DataRate: 1,
			PruneLifetime: lifetime, Topologies: []string{experiment.TopoRand3},
		}
	}
	lifetimes := []des.Time{2, 5, 10, 30}
	results := map[des.Time]float64{}
	for i := 0; i < b.N; i++ {
		for _, lt := range lifetimes {
			for _, p := range experiment.RunFig89(cfgFor(lt)) {
				if p.Protocol == "DVMRP" {
					results[lt] = p.DataOverhead.Mean()
				}
			}
		}
	}
	b.ReportMetric(results[2], "dvmrp_data_t2")
	b.ReportMetric(results[5], "dvmrp_data_t5")
	b.ReportMetric(results[10], "dvmrp_data_t10")
	b.ReportMetric(results[30], "dvmrp_data_t30")
}

// BenchmarkDataPlane is the zero-allocation data-plane acceptance
// benchmark: steady-state per-hop cost on the 400-node Waxman instance
// under a Fig. 8/9-style load (40-member SCMP group, single source),
// fast path vs the preserved reference path. Each iteration injects one
// data packet and drains the network, so allocs/op is the allocation
// bill for one packet's full tree fan-out (~hops/op link crossings plus
// the per-packet delivery ground-truth record — the reference path adds
// a packet copy and a closure per hop on top). events/sec and ns/hop
// are the throughput metrics the >=2x acceptance criterion reads.
func BenchmarkDataPlane(b *testing.B) {
	wg, err := topology.Waxman(topology.DefaultWaxman(400), rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	g := wg.Graph.ScaleDelays(1e-3)
	modes := []struct {
		name  string
		build func(*topology.Graph, netsim.Protocol) *netsim.Network
	}{
		{"fast", netsim.New},
		{"ref", netsim.NewRef},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			s := core.New(core.Config{MRouter: 0, Kappa: 1.5})
			n := mode.build(g, s)
			rnd := rand.New(rand.NewSource(7))
			members := make([]topology.NodeID, 0, 40)
			for _, v := range rnd.Perm(g.N()) {
				if v != 0 {
					members = append(members, topology.NodeID(v))
				}
				if len(members) == 40 {
					break
				}
			}
			for i, m := range members {
				m := m
				n.Sched.At(des.Time(float64(i)*0.01), func() { n.HostJoin(m, 1) })
			}
			n.Run() // tree installed; steady state from here
			src := members[0]
			startEvents := n.Sched.Fired()
			startHops := totalCrossings(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n.SendData(src, 1, packet.DefaultDataSize)
				n.Run()
			}
			b.StopTimer()
			events := n.Sched.Fired() - startEvents
			hops := totalCrossings(n) - startHops
			if hops == 0 {
				b.Fatal("no link crossings in data phase")
			}
			sec := b.Elapsed().Seconds()
			if sec > 0 {
				b.ReportMetric(float64(events)/sec, "events/sec")
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(hops), "ns/hop")
			}
			b.ReportMetric(float64(hops)/float64(b.N), "hops/op")
		})
	}
}

// BenchmarkDataPlanePartitioned is the partitioned-drive acceptance
// benchmark: the 400-node Waxman instance under a Fig. 8/9-style load,
// widened to an 8-source burst per iteration so every partition owns
// forwarding work inside each window. Sub-benchmarks sweep the
// partition count; k=1 is the serial scheduler baseline the >=3x
// 8-core acceptance criterion compares k=8 against. events/sec counts
// dispatches across the global scheduler and every partition shard.
func BenchmarkDataPlanePartitioned(b *testing.B) {
	wg, err := topology.Waxman(topology.DefaultWaxman(400), rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	g := wg.Graph.ScaleDelays(1e-3)
	for _, k := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			s := core.New(core.Config{MRouter: 0, Kappa: 1.5})
			n := netsim.New(g, s)
			if engaged := n.Partition(k, 1); engaged != (k > 1) {
				b.Fatalf("Partition(%d) engaged=%v", k, engaged)
			}
			rnd := rand.New(rand.NewSource(7))
			members := make([]topology.NodeID, 0, 40)
			for _, v := range rnd.Perm(g.N()) {
				if v != 0 {
					members = append(members, topology.NodeID(v))
				}
				if len(members) == 40 {
					break
				}
			}
			for i, m := range members {
				m := m
				n.Sched.At(des.Time(float64(i)*0.01), func() { n.HostJoin(m, 1) })
			}
			n.Run() // tree installed; steady state from here
			sources := members[:8]
			startEvents := n.EventsFired()
			startHops := totalCrossings(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, src := range sources {
					n.SendData(src, 1, packet.DefaultDataSize)
				}
				n.Run()
			}
			b.StopTimer()
			events := n.EventsFired() - startEvents
			hops := totalCrossings(n) - startHops
			if hops == 0 {
				b.Fatal("no link crossings in data phase")
			}
			sec := b.Elapsed().Seconds()
			if sec > 0 {
				b.ReportMetric(float64(events)/sec, "events/sec")
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(hops), "ns/hop")
			}
			b.ReportMetric(float64(hops)/float64(b.N), "hops/op")
		})
	}
}

// totalCrossings sums link crossings over every packet kind.
func totalCrossings(n *netsim.Network) int64 {
	var sum int64
	for k := 0; k < packet.NumKinds; k++ {
		sum += n.Metrics.Crossings(packet.Kind(k))
	}
	return sum
}
